package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"hpcfail/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !almostEq(s.Mean, 5, 1e-9) {
		t.Errorf("mean = %v", s.Mean)
	}
	if !almostEq(s.Stddev, 2.138, 0.001) {
		t.Errorf("stddev = %v", s.Stddev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if !almostEq(s.Median, 4.5, 1e-9) {
		t.Errorf("median = %v", s.Median)
	}
	if (Summarize(nil) != Summary{}) {
		t.Error("empty sample should yield zero Summary")
	}
	if Summarize([]float64{3}).Stddev != 0 {
		t.Error("single sample stddev should be 0")
	}
	if Summarize([]float64{1, 2}).String() == "" {
		t.Error("String should render")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4} // unsorted on purpose
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q25 = %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEq(got, c.want, 1e-9) {
			t.Errorf("F(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	xs, fs := e.Points()
	if len(xs) != 3 || fs[len(fs)-1] != 1 {
		t.Errorf("Points = %v %v", xs, fs)
	}
	if e.N() != 4 {
		t.Error("N wrong")
	}
	if NewECDF(nil).At(5) != 0 {
		t.Error("empty ECDF should be 0 everywhere")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{-1, 0, 0.5, 1.5, 2.5, 99}, 0, 3, 3)
	want := []int{3, 1, 2} // -1 clamps to bin 0, 99 clamps to bin 2
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	if !almostEq(h.BinCenter(0), 0.5, 1e-9) {
		t.Errorf("BinCenter(0) = %v", h.BinCenter(0))
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad histogram spec did not panic")
		}
	}()
	NewHistogram(nil, 1, 0, 3)
}

func TestInterArrivalAndMTBF(t *testing.T) {
	t0 := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	// Deliberately unsorted.
	ts := []time.Time{t0.Add(3 * time.Minute), t0, t0.Add(1 * time.Minute)}
	gaps := InterArrival(ts)
	if len(gaps) != 2 || gaps[0] != time.Minute || gaps[1] != 2*time.Minute {
		t.Fatalf("gaps = %v", gaps)
	}
	m := MTBF(ts)
	if !almostEq(m.Mean, 1.5, 1e-9) {
		t.Errorf("MTBF mean = %v", m.Mean)
	}
	if InterArrival(ts[:1]) != nil {
		t.Error("single event should have no gaps")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-9) {
		t.Errorf("perfect correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-9) {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if Pearson(xs, []float64{1, 1, 1, 1, 1}) != 0 {
		t.Error("zero variance should give 0")
	}
	if Pearson(xs, ys[:3]) != 0 {
		t.Error("mismatched lengths should give 0")
	}
}

func TestPhi(t *testing.T) {
	// Perfect association.
	if got := Phi(10, 0, 0, 10); !almostEq(got, 1, 1e-9) {
		t.Errorf("phi perfect = %v", got)
	}
	// Independence: all cells equal.
	if got := Phi(5, 5, 5, 5); !almostEq(got, 0, 1e-9) {
		t.Errorf("phi independent = %v", got)
	}
	if Phi(0, 0, 5, 5) != 0 {
		t.Error("empty margin should give 0")
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Norm(10, 2)
	}
	lo, hi := BootstrapMeanCI(xs, 0.95, 500, rng.New(2))
	if lo >= hi {
		t.Fatalf("degenerate CI [%v, %v]", lo, hi)
	}
	if lo > 10 || hi < 10 {
		t.Errorf("CI [%v, %v] should cover the true mean 10", lo, hi)
	}
	if hi-lo > 1 {
		t.Errorf("CI too wide: [%v, %v]", lo, hi)
	}
	if l, h := BootstrapMeanCI(nil, 0.95, 100, rng.New(1)); l != 0 || h != 0 {
		t.Error("empty sample CI should be (0,0)")
	}
}

func TestRates(t *testing.T) {
	r := Rates{TP: 9, FP: 3, TN: 80, FN: 1}
	if !almostEq(r.Precision(), 0.75, 1e-9) {
		t.Errorf("precision = %v", r.Precision())
	}
	if !almostEq(r.Recall(), 0.9, 1e-9) {
		t.Errorf("recall = %v", r.Recall())
	}
	if !almostEq(r.FalsePositiveRate(), 0.25, 1e-9) {
		t.Errorf("fpr = %v", r.FalsePositiveRate())
	}
	if r.F1() <= 0 || r.F1() > 1 {
		t.Errorf("f1 = %v", r.F1())
	}
	var zero Rates
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.FalsePositiveRate() != 0 || zero.F1() != 0 {
		t.Error("zero Rates should produce zero metrics")
	}
	if r.String() == "" {
		t.Error("String should render")
	}
}

func TestBucketByDayAndHour(t *testing.T) {
	t0 := time.Date(2015, 6, 1, 10, 30, 0, 0, time.UTC)
	ts := []time.Time{t0, t0.Add(time.Hour), t0.Add(25 * time.Hour)}
	days := BucketByDay(ts)
	if len(days) != 2 {
		t.Fatalf("got %d days", len(days))
	}
	sorted := SortedDays(days)
	if len(sorted) != 2 || !sorted[0].Before(sorted[1]) {
		t.Error("SortedDays not ascending")
	}
	if days[sorted[0]] != 2 || days[sorted[1]] != 1 {
		t.Errorf("day counts = %v", days)
	}
	hours := BucketByHour(ts)
	if hours[10] != 1 || hours[11] != 2 {
		t.Errorf("hour counts = %v", hours)
	}
}

func TestFractionWithin(t *testing.T) {
	ds := []time.Duration{time.Minute, 5 * time.Minute, time.Hour}
	if got := FractionWithin(ds, 10*time.Minute); !almostEq(got, 2.0/3, 1e-9) {
		t.Errorf("FractionWithin = %v", got)
	}
	if FractionWithin(nil, time.Minute) != 0 {
		t.Error("empty input should give 0")
	}
}

func TestChiSquareGOF(t *testing.T) {
	// Perfect fit: statistic 0.
	if got := ChiSquareGOF([]int{50, 50}, []float64{0.5, 0.5}); got != 0 {
		t.Errorf("perfect fit statistic = %v", got)
	}
	// Known value: observed 60/40 vs 50/50 -> (10^2/50)*2 = 4.
	if got := ChiSquareGOF([]int{60, 40}, []float64{0.5, 0.5}); !almostEq(got, 4, 1e-9) {
		t.Errorf("statistic = %v, want 4", got)
	}
	// Unnormalised probabilities behave the same.
	if got := ChiSquareGOF([]int{60, 40}, []float64{5, 5}); !almostEq(got, 4, 1e-9) {
		t.Errorf("unnormalised statistic = %v", got)
	}
	// Invalid shapes.
	if got := ChiSquareGOF([]int{1}, []float64{0.5, 0.5}); !math.IsInf(got, 1) {
		t.Error("mismatched lengths should be +Inf")
	}
	if got := ChiSquareGOF([]int{1, 0}, []float64{0, 1}); !math.IsInf(got, 1) {
		t.Error("observation in zero-probability bucket should be +Inf")
	}
	if ChiSquareGOF([]int{0, 0}, []float64{0.5, 0.5}) != 0 {
		t.Error("no observations should be 0")
	}
}

func TestChiSquareFits(t *testing.T) {
	// A true multinomial sample should fit its own distribution.
	r := rng.New(5)
	probs := []float64{0.5, 0.3, 0.2}
	counts := make([]int, 3)
	for i := 0; i < 5000; i++ {
		counts[r.Categorical(probs)]++
	}
	if !ChiSquareFits(counts, probs) {
		t.Errorf("true sample rejected: %v", counts)
	}
	// A grossly wrong distribution should be rejected.
	if ChiSquareFits(counts, []float64{0.05, 0.05, 0.9}) {
		t.Error("wrong distribution accepted")
	}
	// Large-df branch exercises the approximation.
	bigProbs := make([]float64, 30)
	bigCounts := make([]int, 30)
	for i := range bigProbs {
		bigProbs[i] = 1.0 / 30
	}
	for i := 0; i < 30000; i++ {
		bigCounts[r.Categorical(bigProbs)]++
	}
	if !ChiSquareFits(bigCounts, bigProbs) {
		t.Error("large-df true sample rejected")
	}
}

// Property: ECDF is monotone non-decreasing and bounded in [0,1].
func TestQuickECDFMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = r.Norm(0, 10)
		}
		e := NewECDF(xs)
		prev := 0.0
		for x := -30.0; x <= 30; x += 0.5 {
			v := e.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: MTBF of an exponential process with mean m is ≈ m.
func TestQuickMTBFEstimatesRate(t *testing.T) {
	r := rng.New(99)
	t0 := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	const meanMin = 7.0
	ts := []time.Time{t0}
	cur := t0
	for i := 0; i < 5000; i++ {
		cur = cur.Add(time.Duration(r.Exp(meanMin) * float64(time.Minute)))
		ts = append(ts, cur)
	}
	m := MTBF(ts)
	if !almostEq(m.Mean, meanMin, 0.5) {
		t.Errorf("MTBF mean = %v, want ~%v", m.Mean, meanMin)
	}
}

// Property: Pearson is symmetric and bounded.
func TestQuickPearsonBounded(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		xs := make([]float64, 30)
		ys := make([]float64, 30)
		for i := range xs {
			xs[i] = r.Float64()
			ys[i] = r.Float64()
		}
		p := Pearson(xs, ys)
		q := Pearson(ys, xs)
		return math.Abs(p) <= 1+1e-12 && almostEq(p, q, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
