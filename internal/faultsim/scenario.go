package faultsim

import (
	"time"

	"hpcfail/internal/alps"
	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/faults"
	"hpcfail/internal/topology"
	"hpcfail/internal/workload"
)

// Failure is one ground-truth node failure.
type Failure struct {
	// Node is the failed node.
	Node cname.Name
	// Time is the failure manifestation instant (terminal internal log
	// event).
	Time time.Time
	// Cause is the true root cause.
	Cause faults.Cause
	// Mode is fail-stop or fail-slow.
	Mode faults.Mode
	// JobID links application-triggered failures to their job (0
	// otherwise).
	JobID int64
	// Episode groups failures born from the same malfunction; 0 marks
	// singletons.
	Episode int
	// HasExternalIndicator marks fail-slow failures whose external logs
	// carry early warnings.
	HasExternalIndicator bool
	// InternalLead is the gap between the first internal precursor and
	// the failure.
	InternalLead time.Duration
	// ExternalLead is the gap between the earliest external indicator
	// and the failure (0 when none).
	ExternalLead time.Duration
}

// NHFKind is the ground truth behind a node-heartbeat-fault event.
type NHFKind int

const (
	// NHFFailed: the NHF belongs to a node that really failed.
	NHFFailed NHFKind = iota
	// NHFPowerOff: the node was intentionally powered off.
	NHFPowerOff
	// NHFSkipped: a transient heartbeat skip; the node kept running.
	NHFSkipped
)

// String returns the kind name.
func (k NHFKind) String() string {
	switch k {
	case NHFFailed:
		return "failed"
	case NHFPowerOff:
		return "poweroff"
	case NHFSkipped:
		return "skipped"
	default:
		return "unknown"
	}
}

// NHFTruth records one NHF event's ground truth for Fig 6 validation.
type NHFTruth struct {
	Node cname.Name
	Time time.Time
	Kind NHFKind
}

// NVFTruth records one NVF event's ground truth (failure-linked or
// benign) for Fig 5 validation.
type NVFTruth struct {
	Node   cname.Name
	Time   time.Time
	Failed bool
}

// NearMiss records a healthy node that emitted a failure-like internal
// sequence (Fig 14 false-positive source).
type NearMiss struct {
	Node        cname.Name
	Time        time.Time
	HasExternal bool
}

// Scenario is a complete simulated system history.
type Scenario struct {
	// Profile is the generating profile.
	Profile Profile
	// Cluster is the instantiated topology.
	Cluster *topology.Cluster
	// Start and End bound the simulated window.
	Start, End time.Time
	// Jobs is the full job stream (background + failure-linked).
	Jobs []workload.Job
	// Launches maps ALPS apids to jobs on Cray systems (empty for S5).
	Launches []alps.Launch
	// Records is every log event of every stream, sorted by time.
	Records []events.Record
	// Failures is the ground-truth failure list, sorted by time.
	Failures []Failure
	// NHFs is the ground truth for every emitted NHF.
	NHFs []NHFTruth
	// NVFs is the ground truth for every emitted NVF.
	NVFs []NVFTruth
	// NearMisses lists the healthy failure-like sequences.
	NearMisses []NearMiss
	// SWOCount is the number of system-wide outages in the window.
	SWOCount int
}

// Days returns the simulated whole-day count.
func (s *Scenario) Days() int {
	return int(s.End.Sub(s.Start) / (24 * time.Hour))
}

// FailuresBetween returns ground-truth failures in [from, to).
func (s *Scenario) FailuresBetween(from, to time.Time) []Failure {
	var out []Failure
	for _, f := range s.Failures {
		if !f.Time.Before(from) && f.Time.Before(to) {
			out = append(out, f)
		}
	}
	return out
}

// FailuresOn returns the ground-truth failures of one node, in time
// order (Failures is time-sorted, so the restriction is too). The
// remediation scorer uses this to decide whether an action on a node
// was prescient or a false alarm.
func (s *Scenario) FailuresOn(node cname.Name) []Failure {
	var out []Failure
	for _, f := range s.Failures {
		if f.Node == node {
			out = append(out, f)
		}
	}
	return out
}

// JobsOn returns the jobs holding the node at time t — the workload a
// failure at that instant would kill, and what a drain just before it
// saves.
func (s *Scenario) JobsOn(node cname.Name, t time.Time) []*workload.Job {
	return workload.JobsOnNode(s.Jobs, node, t)
}

// RecordsBetween returns records in [from, to). Records are sorted, so
// this is a binary-searchable slice; for simplicity it scans (call sites
// are experiment setup, not hot paths).
func (s *Scenario) RecordsBetween(from, to time.Time) []events.Record {
	var out []events.Record
	for _, r := range s.Records {
		if r.Time.Before(from) {
			continue
		}
		if !r.Time.Before(to) {
			break
		}
		out = append(out, r)
	}
	return out
}
