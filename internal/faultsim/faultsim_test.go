package faultsim

import (
	"sort"
	"testing"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/faults"
	"hpcfail/internal/topology"
	"hpcfail/internal/workload"
)

var simStart = time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)

// smallProfile returns a downsized S1-like profile for fast tests.
func smallProfile(t *testing.T) Profile {
	t.Helper()
	p, err := DefaultProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec = topology.Spec{ID: "S1", Machine: "Cray XC30", Nodes: 768, CabinetCols: 2,
		Scheduler: topology.SchedulerSlurm, Cray: true}
	p.Workload.MeanInterarrival = 20 * time.Minute
	return p
}

func genSmall(t *testing.T, days int, seed uint64) *Scenario {
	t.Helper()
	p := smallProfile(t)
	scn, err := Generate(p, simStart, simStart.Add(time.Duration(days)*24*time.Hour), seed)
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

func TestDefaultProfilesValid(t *testing.T) {
	for _, id := range []string{"S1", "S2", "S3", "S4", "S5"} {
		p, err := DefaultProfile(id)
		if err != nil {
			t.Fatalf("DefaultProfile(%s): %v", id, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s profile invalid: %v", id, err)
		}
	}
	if _, err := DefaultProfile("S9"); err == nil {
		t.Error("unknown system should error")
	}
}

func TestProfileValidateRejectsBad(t *testing.T) {
	p, _ := DefaultProfile("S1")
	p.CauseMix = nil
	if p.Validate() == nil {
		t.Error("empty cause mix should fail validation")
	}
	p, _ = DefaultProfile("S1")
	p.ExternalLeadFactor = 0.5
	if p.Validate() == nil {
		t.Error("lead factor < 1 should fail validation")
	}
	p, _ = DefaultProfile("S1")
	p.Spec.Nodes = 0
	if p.Validate() == nil {
		t.Error("no nodes should fail validation")
	}
}

func TestGenerateRejectsEmptyWindow(t *testing.T) {
	p := smallProfile(t)
	if _, err := Generate(p, simStart, simStart, 1); err == nil {
		t.Error("empty window should error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genSmall(t, 3, 42)
	b := genSmall(t, 3, 42)
	if len(a.Records) != len(b.Records) || len(a.Failures) != len(b.Failures) {
		t.Fatalf("sizes differ: %d/%d records, %d/%d failures",
			len(a.Records), len(b.Records), len(a.Failures), len(b.Failures))
	}
	for i := range a.Failures {
		if a.Failures[i] != b.Failures[i] {
			t.Fatalf("failure %d differs", i)
		}
	}
	for i := range a.Records {
		if a.Records[i].Msg != b.Records[i].Msg || !a.Records[i].Time.Equal(b.Records[i].Time) {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestRecordsSortedAndInWindow(t *testing.T) {
	scn := genSmall(t, 3, 7)
	if !sort.SliceIsSorted(scn.Records, func(i, j int) bool {
		return scn.Records[i].Time.Before(scn.Records[j].Time)
	}) {
		// SortByTime is stable with tie-breaks; Before-based check is
		// sufficient for monotonicity.
		t.Fatal("records not time-sorted")
	}
	// Most records fall inside the window (boots/epilogues may trail
	// slightly past the end).
	for _, r := range scn.Records[:100] {
		if r.Time.Before(scn.Start.Add(-24 * time.Hour)) {
			t.Fatalf("record far before window: %v", r.Time)
		}
	}
}

func TestFailuresHaveSignatures(t *testing.T) {
	scn := genSmall(t, 5, 11)
	if len(scn.Failures) < 10 {
		t.Fatalf("only %d failures over 5 days", len(scn.Failures))
	}
	// Every failure must have a terminal internal event at its time:
	// either an unscheduled shutdown, a silent shutdown, or an NHC
	// admindown.
	for _, f := range scn.Failures {
		found := false
		for _, r := range scn.RecordsBetween(f.Time.Add(-time.Second), f.Time.Add(time.Second)) {
			if r.Component != f.Node {
				continue
			}
			switch r.Category {
			case faults.NodeShutdown.Category(), faults.SilentShutdown.Category(), "nhc_admindown":
				if r.Field("intent") != "scheduled" {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("failure %v at %v has no terminal event", f.Node, f.Time)
		}
	}
}

func TestAppTriggeredFailuresShareJobs(t *testing.T) {
	scn := genSmall(t, 7, 13)
	// Collect episodes with application-triggered causes.
	byEpisode := map[int][]Failure{}
	for _, f := range scn.Failures {
		if f.Episode != 0 && f.Cause.ApplicationTriggered() {
			byEpisode[f.Episode] = append(byEpisode[f.Episode], f)
		}
	}
	checked := 0
	for ep, fs := range byEpisode {
		if len(fs) < 2 {
			continue
		}
		checked++
		job := fs[0].JobID
		if job == 0 {
			t.Fatalf("episode %d app-triggered failure lacks job", ep)
		}
		for _, f := range fs {
			if f.JobID != job {
				t.Fatalf("episode %d mixes jobs %d and %d", ep, job, f.JobID)
			}
		}
		// The job must exist and cover the failing nodes.
		var found *workload.Job
		for i := range scn.Jobs {
			if scn.Jobs[i].ID == job {
				found = &scn.Jobs[i]
			}
		}
		if found == nil {
			t.Fatalf("episode %d job %d missing from scenario", ep, job)
		}
		for _, f := range fs {
			covered := false
			for _, n := range found.Nodes {
				if n == f.Node {
					covered = true
				}
			}
			if !covered {
				t.Fatalf("job %d does not cover failed node %v", job, f.Node)
			}
		}
	}
	if checked == 0 {
		t.Error("no multi-node app-triggered episodes in 7 days")
	}
}

func TestNHFGroundTruthConsistency(t *testing.T) {
	scn := genSmall(t, 7, 17)
	if len(scn.NHFs) == 0 {
		t.Fatal("no NHFs generated")
	}
	kinds := map[NHFKind]int{}
	for _, n := range scn.NHFs {
		kinds[n.Kind]++
	}
	for _, k := range []NHFKind{NHFFailed, NHFPowerOff, NHFSkipped} {
		if kinds[k] == 0 {
			t.Errorf("no NHFs of kind %v over a week", k)
		}
	}
	// Failed-kind fraction should be in the paper's broad band
	// (21–64 %); allow slack for one small week.
	frac := float64(kinds[NHFFailed]) / float64(len(scn.NHFs))
	if frac < 0.10 || frac > 0.80 {
		t.Errorf("NHF failed fraction = %.2f, expected ~0.2-0.7", frac)
	}
}

func TestExternalIndicatorsOnlyForEligibleCauses(t *testing.T) {
	scn := genSmall(t, 7, 19)
	for _, f := range scn.Failures {
		if f.HasExternalIndicator {
			if f.Mode != faults.FailSlow {
				t.Errorf("indicator-bearing failure not fail-slow: %+v", f)
			}
			if f.ExternalLead <= f.InternalLead {
				t.Errorf("external lead %v <= internal %v", f.ExternalLead, f.InternalLead)
			}
			if f.JobID != 0 && f.Cause.ApplicationTriggered() {
				t.Errorf("app-triggered failure has external indicator: %+v", f)
			}
		} else if f.Mode != faults.FailStop {
			t.Errorf("non-indicator failure should be fail-stop: %+v", f)
		}
	}
}

func TestLeadTimeFactorAroundFive(t *testing.T) {
	scn := genSmall(t, 14, 23)
	n, sum := 0, 0.0
	for _, f := range scn.Failures {
		if f.HasExternalIndicator {
			n++
			sum += float64(f.ExternalLead) / float64(f.InternalLead)
		}
	}
	if n == 0 {
		t.Fatal("no fail-slow failures in 2 weeks")
	}
	mean := sum / float64(n)
	if mean < 4 || mean > 6 {
		t.Errorf("mean lead enhancement factor = %.2f, want ~5", mean)
	}
}

func TestBenignErrorNodesOutnumberFailures(t *testing.T) {
	scn := genSmall(t, 5, 29)
	// Count nodes/day with MCE or Lustre errors that never fail that
	// day (Fig 10's population).
	mceNodes := map[string]bool{}
	for _, r := range scn.Records {
		if r.Category == faults.MCE.Category() {
			mceNodes[r.Component.String()+r.Time.Format("2006-01-02")] = true
		}
	}
	if len(mceNodes) <= len(scn.Failures) {
		t.Errorf("MCE-logging node-days (%d) should outnumber failures (%d)",
			len(mceNodes), len(scn.Failures))
	}
}

func TestS5ScenarioConditions(t *testing.T) {
	p, err := DefaultProfile("S5")
	if err != nil {
		t.Fatal(err)
	}
	p.Workload.MeanInterarrival = 30 * time.Minute
	scn, err := Generate(p, simStart, simStart.Add(7*24*time.Hour), 31)
	if err != nil {
		t.Fatal(err)
	}
	// Hung-task events must dominate (Fig 15: 80.57 % of nodes).
	counts := map[string]int{}
	for _, r := range scn.Records {
		if r.Stream == events.StreamConsole {
			counts[r.Category]++
		}
	}
	if counts[faults.HungTask.Category()] == 0 {
		t.Fatal("no hung-task events on S5")
	}
	if counts[faults.HungTask.Category()] < counts[faults.OOMKiller.Category()] {
		t.Error("hung tasks should dominate OOM on S5")
	}
	// No Cray external machinery on S5.
	for _, r := range scn.Records {
		if r.Stream == events.StreamControllerBC || r.Stream == events.StreamControllerCC {
			t.Fatalf("S5 emitted controller record: %+v", r)
		}
	}
}

func TestSWOsAreScheduled(t *testing.T) {
	p := smallProfile(t)
	p.SWOsPerMonth = 30 // force one nearly every day
	scn, err := Generate(p, simStart, simStart.Add(3*24*time.Hour), 37)
	if err != nil {
		t.Fatal(err)
	}
	if scn.SWOCount == 0 {
		t.Fatal("no SWOs at forced rate")
	}
	scheduled := 0
	for _, r := range scn.Records {
		if r.Category == faults.NodeShutdown.Category() && r.Field("intent") == "scheduled" {
			scheduled++
		}
	}
	if scheduled < scn.SWOCount*scn.Cluster.NumNodes()/2 {
		t.Errorf("SWO shutdowns = %d, expected ~%d", scheduled, scn.SWOCount*scn.Cluster.NumNodes())
	}
}

func TestFloodBladesWarnHeavily(t *testing.T) {
	scn := genSmall(t, 2, 41)
	perBlade := map[string]int{}
	for _, r := range scn.Records {
		if r.Category == faults.SEDCVoltage.Category() {
			perBlade[r.Component.String()]++
		}
	}
	// At least one blade must flood (> 1400/day → > 2800 over 2 days;
	// allow slack for the miscalibration noise).
	max := 0
	for _, c := range perBlade {
		if c > max {
			max = c
		}
	}
	if max < 2000 {
		t.Errorf("max per-blade SEDC warnings over 2 days = %d, want > 2000", max)
	}
}

func TestScenarioHelpers(t *testing.T) {
	scn := genSmall(t, 3, 43)
	if scn.Days() != 3 {
		t.Errorf("Days = %d", scn.Days())
	}
	mid := simStart.Add(24 * time.Hour)
	fs := scn.FailuresBetween(simStart, mid)
	for _, f := range fs {
		if f.Time.Before(simStart) || !f.Time.Before(mid) {
			t.Errorf("FailuresBetween out of range: %v", f.Time)
		}
	}
	rs := scn.RecordsBetween(mid, mid.Add(time.Hour))
	for _, r := range rs {
		if r.Time.Before(mid) || !r.Time.Before(mid.Add(time.Hour)) {
			t.Errorf("RecordsBetween out of range: %v", r.Time)
		}
	}
}

func TestApidIndirection(t *testing.T) {
	scn := genSmall(t, 7, 53)
	// Cray systems: internal records reference ALPS apids, never raw
	// job ids; every apid resolves to a scenario job via the launches.
	launchJob := map[int64]int64{}
	for _, l := range scn.Launches {
		launchJob[l.Apid] = l.JobID
	}
	if len(launchJob) == 0 {
		t.Fatal("no ALPS launches on a Cray scenario")
	}
	jobs := map[int64]bool{}
	for _, j := range scn.Jobs {
		jobs[j.ID] = true
	}
	checked := 0
	for _, r := range scn.Records {
		if !r.Stream.Internal() || r.JobID == 0 {
			continue
		}
		checked++
		job, ok := launchJob[r.JobID]
		if !ok {
			t.Fatalf("internal record references id %d which is not an apid", r.JobID)
		}
		if !jobs[job] {
			t.Fatalf("apid %d resolves to unknown job %d", r.JobID, job)
		}
	}
	if checked == 0 {
		t.Fatal("no job-referencing internal records")
	}
	// Every job has exactly one launch.
	if len(scn.Launches) != len(scn.Jobs) {
		t.Errorf("launches %d != jobs %d", len(scn.Launches), len(scn.Jobs))
	}
}

func TestS5HasNoALPS(t *testing.T) {
	p, err := DefaultProfile("S5")
	if err != nil {
		t.Fatal(err)
	}
	p.Workload.MeanInterarrival = time.Hour
	scn, err := Generate(p, simStart, simStart.Add(3*24*time.Hour), 59)
	if err != nil {
		t.Fatal(err)
	}
	if len(scn.Launches) != 0 {
		t.Error("institutional cluster should have no ALPS launches")
	}
	for _, r := range scn.Records {
		if r.Stream == events.StreamALPS {
			t.Fatal("S5 emitted an ALPS record")
		}
	}
}

// TestFailureMixMatchesWeights checks the generator's failure-level
// cause calibration: aggregated over several independent periods, each
// cause's share must sit near its profile weight. (A chi-square test
// would be wrong here — episode members are perfectly correlated, so
// the effective sample is the episode count, not the failure count.)
func TestFailureMixMatchesWeights(t *testing.T) {
	p := smallProfile(t)
	counts := map[faults.Cause]int{}
	total := 0
	for seed := uint64(300); seed < 304; seed++ {
		scn, err := Generate(p, simStart, simStart.Add(30*24*time.Hour), seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range scn.Failures {
			counts[f.Cause]++
			total++
		}
	}
	if total < 500 {
		t.Fatalf("only %d failures aggregated", total)
	}
	for _, cw := range p.CauseMix {
		got := float64(counts[cw.Cause]) / float64(total)
		if diff := got - cw.Weight; diff < -0.07 || diff > 0.07 {
			t.Errorf("%v share %.3f deviates from weight %.3f beyond ±0.07", cw.Cause, got, cw.Weight)
		}
	}
}

func TestLaneChatterUsesRealFabricLinks(t *testing.T) {
	scn := genSmall(t, 5, 61)
	lane := 0
	for _, r := range scn.Records {
		if r.Category != "link_error" {
			continue
		}
		lane++
		// Fabric-backed events carry a real peer blade.
		peer := r.Field("peer")
		if peer == "" {
			t.Fatalf("link_error without peer: %+v", r)
		}
		if _, err := cname.Parse(peer); err != nil {
			t.Fatalf("bad peer %q: %v", peer, err)
		}
		if out := r.Field("outcome"); out != "failover_ok" && out != "failover_failed" {
			t.Fatalf("bad outcome %q", out)
		}
	}
	if lane == 0 {
		t.Fatal("no lane events over 5 days")
	}
}

func TestNHFKindString(t *testing.T) {
	if NHFFailed.String() != "failed" || NHFPowerOff.String() != "poweroff" ||
		NHFSkipped.String() != "skipped" || NHFKind(9).String() != "unknown" {
		t.Error("NHFKind names wrong")
	}
}
