package faultsim

import (
	"fmt"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/faults"
	"hpcfail/internal/hss"
	"hpcfail/internal/rng"
	"hpcfail/internal/sedc"
	"hpcfail/internal/stacktrace"
)

// synthTraceField synthesizes and encodes a call trace for a record
// field.
func synthTraceField(cause faults.Cause, r *rng.Rand) string {
	return stacktrace.Synthesize(cause, r).Encode()
}

// genBackground emits the benign noise floor: non-failing heartbeat and
// voltage faults, the Fig 10 erroring-but-healthy node populations, SEDC
// warning scatter and floods, blade/cabinet health-fault chatter, and
// the Fig 14 near-miss sequences.
func (g *generator) genBackground(r *rng.Rand) {
	days := int(g.scn.End.Sub(g.scn.Start).Hours() / 24)
	if days == 0 {
		days = 1
	}
	for day := 0; day < days; day++ {
		dayStart := g.scn.Start.Add(time.Duration(day) * 24 * time.Hour)
		g.genBenignHeartbeats(dayStart, r)
		g.genErrorNodes(dayStart, r)
		g.genSEDCScatter(dayStart, r)
		g.genHealthFaultChatter(dayStart, r)
		g.genLaneChatter(dayStart, r)
		g.genNearMisses(dayStart, r)
	}
	g.genSEDCFloods(r)
}

// genLaneChatter emits benign HSN lane degradations across the fabric:
// failovers succeed, traffic re-routes, nothing fails — network noise a
// prediction scheme must not mistake for node trouble.
func (g *generator) genLaneChatter(dayStart time.Time, r *rng.Rand) {
	if g.fabric == nil || g.p.LaneEventsPerDay <= 0 {
		return
	}
	blades := g.scn.Cluster.Blades()
	for i := 0; i < r.Poisson(g.p.LaneEventsPerDay); i++ {
		blade := blades[r.Intn(len(blades))]
		if rec, ok := g.fabric.RandomLaneEvent(randTimeIn(dayStart, r), blade, g.p.PFailoverOK, g.r); ok {
			g.add(rec)
		}
	}
}

// randTimeIn returns a uniform instant within the day.
func randTimeIn(dayStart time.Time, r *rng.Rand) time.Time {
	return dayStart.Add(time.Duration(r.Float64() * float64(24*time.Hour)))
}

// genBenignHeartbeats emits the NHFs that do not correspond to failures
// (Fig 6's power-off and skipped-beat populations) and the rare benign
// NVFs.
func (g *generator) genBenignHeartbeats(dayStart time.Time, r *rng.Rand) {
	p := g.p
	// Power-offs: a scheduled shutdown precedes the NHF; the node boots
	// back hours later.
	for i := 0; i < r.Poisson(p.BenignNHFPoweroffPerDay); i++ {
		node := g.scn.Cluster.Node(r.Intn(g.scn.Cluster.NumNodes()))
		at := randTimeIn(dayStart, r)
		g.scheduledShutdown(at, node)
		g.nhfAt(at.Add(time.Duration(30+r.Intn(60))*time.Second), node, NHFPowerOff)
		g.boot(at.Add(time.Duration(2+r.Intn(8))*time.Hour), node)
	}
	// Skipped beats: an NHF followed by recovery chatter.
	for i := 0; i < r.Poisson(p.BenignNHFSkippedPerDay); i++ {
		node := g.scn.Cluster.Node(r.Intn(g.scn.Cluster.NumNodes()))
		at := randTimeIn(dayStart, r)
		g.nhfAt(at, node, NHFSkipped)
		g.add(events.Record{
			Time:   at.Add(time.Duration(60+r.Intn(120)) * time.Second),
			Stream: events.StreamERD, Component: node,
			Severity: events.SevInfo, Category: "ec_heartbeat_ok",
			Msg: fmt.Sprintf("heartbeat from %s resumed", node),
		})
	}
	// Benign NVFs.
	for i := 0; i < r.Poisson(p.BenignNVFPerDay); i++ {
		node := g.scn.Cluster.Node(r.Intn(g.scn.Cluster.NumNodes()))
		at := randTimeIn(dayStart, r)
		g.add(hss.NVFEvent(at, node, "VCC", 0.90+0.03*r.Float64()))
		g.scn.NVFs = append(g.scn.NVFs, NVFTruth{Node: node, Time: at, Failed: false})
	}
}

// genErrorNodes emits the Fig 10 populations: many nodes log hardware
// errors, MCE triggers, Lustre I/O errors and page-fault locks each day
// without failing.
func (g *generator) genErrorNodes(dayStart time.Time, r *rng.Rand) {
	emit := func(rate float64, f func(t time.Time, n cname.Name)) {
		count := r.Poisson(rate)
		if count > g.scn.Cluster.NumNodes() {
			count = g.scn.Cluster.NumNodes()
		}
		for _, nid := range r.SampleInts(g.scn.Cluster.NumNodes(), count) {
			node := g.scn.Cluster.Node(nid)
			for e, n := 0, 1+r.Intn(5); e < n; e++ {
				f(randTimeIn(dayStart, r), node)
			}
		}
	}
	emit(g.p.HwErrNodesPerDay, func(t time.Time, n cname.Name) {
		g.console(t, n, faults.CorrectableMemErr, events.SevWarning,
			"EDAC MC0: corrected memory error on DIMM (benign burst)")
	})
	emit(g.p.MCENodesPerDay, func(t time.Time, n cname.Name) {
		g.console(t, n, faults.MCE, events.SevError,
			"mcelog: corrected error threshold exceeded (page offlined)")
	})
	emit(g.p.LustreIONodesPerDay, func(t time.Time, n cname.Name) {
		g.console(t, n, faults.LustreIOError, events.SevWarning,
			"LustreError: 30-3: slow I/O on OST (deadlock retry)")
	})
	emit(g.p.PageFaultLockNodesPerDay, func(t time.Time, n cname.Name) {
		g.console(t, n, faults.PageFaultLock, events.SevWarning,
			"page fault lock contention: I/O stall signalled")
	})
}

// genSEDCScatter emits a few benign threshold warnings on random blades
// (the Fig 8 unique-blade populations), weighted toward temperature and
// dominated by "below minimum" readings.
func (g *generator) genSEDCScatter(dayStart time.Time, r *rng.Rand) {
	blades := g.scn.Cluster.Blades()
	kinds := []struct {
		typ    faults.Type
		sensor string
		weight float64
	}{
		{faults.SEDCTemp, "temperature", 5},
		{faults.SEDCFanSpeed, "fan_speed", 3},
		{faults.SEDCAirVelocity, "air_velocity", 2},
		{faults.SEDCVoltage, "voltage", 1},
		{faults.ECBFault, "ecb", 0.5},
	}
	weights := make([]float64, len(kinds))
	for i, k := range kinds {
		weights[i] = k.weight
	}
	n := r.Poisson(g.p.SEDCScatterBladesPerDay)
	if n > len(blades) {
		n = len(blades)
	}
	for _, bi := range r.SampleInts(len(blades), n) {
		blade := blades[bi]
		for e, m := 0, 1+r.Intn(6); e < m; e++ {
			k := kinds[r.Categorical(weights)]
			below := r.Bool(0.85)
			th := sedc.DefaultThreshold(sedcKindFor(k.typ))
			val := th.Min - 0.1*th.Min*r.Float64()
			if !below {
				val = th.Max + 0.1*th.Max*r.Float64()
			}
			g.add(hss.SEDCWarningEvent(randTimeIn(dayStart, r), blade, k.typ, k.sensor, val, below))
		}
	}
}

// sedcKindFor maps warning fault types onto sensor kinds for threshold
// lookups.
func sedcKindFor(t faults.Type) sedc.Kind {
	switch t {
	case faults.SEDCVoltage, faults.ECBFault:
		return sedc.Voltage
	case faults.SEDCAirVelocity:
		return sedc.AirVelocity
	case faults.SEDCFanSpeed:
		return sedc.FanSpeed
	default:
		return sedc.Temperature
	}
}

// genSEDCFloods drives the miscalibrated flood blades: a warning on
// nearly every controller scan (Fig 9's > 1400 daily warnings), with the
// FloodStopIdx blade going quiet at StopsAtHour each day.
func (g *generator) genSEDCFloods(r *rng.Rand) {
	blades := g.scn.Cluster.Blades()
	flood := append([]int{}, g.p.FloodBladeIdx...)
	if g.p.FloodStopIdx >= 0 {
		flood = append(flood, g.p.FloodStopIdx)
	}
	interval := g.p.SEDCScanInterval
	if interval <= 0 {
		interval = time.Minute
	}
	for _, bi := range flood {
		if bi < 0 || bi >= len(blades) {
			continue
		}
		blade := blades[bi]
		sensor := sedc.New(blade, sedc.Voltage, uint64(bi)+77)
		sensor.Miscalibrate(0.03 + 0.02*r.Float64())
		stops := bi == g.p.FloodStopIdx
		for t := g.scn.Start; t.Before(g.scn.End); t = t.Add(interval) {
			if stops && t.UTC().Hour() >= g.p.StopsAtHour {
				continue
			}
			violated, below, val := sensor.Violates(t)
			if !violated {
				continue
			}
			g.add(hss.SEDCWarningEvent(t, blade, faults.SEDCVoltage, "voltage", val, below))
		}
	}
}

// genHealthFaultChatter emits the frequent blade/cabinet controller
// health faults that correlate only weakly with failures (Observation
// 2/3): a few distinct components per day, cabinets far chattier than
// blades.
func (g *generator) genHealthFaultChatter(dayStart time.Time, r *rng.Rand) {
	cabs := g.scn.Cluster.Cabinets()
	blades := g.scn.Cluster.Blades()
	cabTypes := []faults.Type{faults.CabinetPowerFault, faults.CabinetSensorCheck, faults.CommFault}
	bladeTypes := []faults.Type{faults.BCHF, faults.ModuleHealthFault, faults.SensorReadFailed, faults.ECLinkFailed}

	nCabs := r.Poisson(g.p.FaultyCabinetFrac * float64(len(cabs)))
	if nCabs > len(cabs) {
		nCabs = len(cabs)
	}
	for _, ci := range r.SampleInts(len(cabs), nCabs) {
		for e, m := 0, r.Poisson(g.p.CabinetFaultEventsMean); e < m; e++ {
			typ := cabTypes[r.Intn(len(cabTypes))]
			g.add(hss.HealthFaultEvent(randTimeIn(dayStart, r), cabs[ci], typ))
		}
	}
	nBlades := r.Poisson(g.p.FaultyBladeFrac * float64(len(blades)))
	if nBlades > len(blades) {
		nBlades = len(blades)
	}
	for _, bi := range r.SampleInts(len(blades), nBlades) {
		for e, m := 0, 1+r.Poisson(g.p.BladeFaultEventsMean); e < m; e++ {
			typ := bladeTypes[r.Intn(len(bladeTypes))]
			g.add(hss.HealthFaultEvent(randTimeIn(dayStart, r), blades[bi], typ))
		}
	}
}

// genNearMisses emits failure-like internal sequences on healthy nodes —
// the false-positive raw material for Fig 14.
func (g *generator) genNearMisses(dayStart time.Time, r *rng.Rand) {
	for i := 0; i < r.Poisson(g.p.NearMissPerDay); i++ {
		node := g.scn.Cluster.Node(r.Intn(g.scn.Cluster.NumNodes()))
		at := randTimeIn(dayStart, r)
		g.emitNearMiss(at, node, r.Bool(g.p.PNearMissExternal))
	}
}
