package faultsim

import (
	"fmt"
	"sort"
	"time"

	"hpcfail/internal/alps"
	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/faults"
	"hpcfail/internal/interconnect"
	"hpcfail/internal/rng"
	"hpcfail/internal/topology"
	"hpcfail/internal/workload"
)

// synthJobBase separates synthesized failure-linked job IDs from the
// background workload's.
const synthJobBase = 1_000_000

// Generate simulates the system described by the profile over
// [start, end) and returns the complete scenario. The same (profile,
// window, seed) always produces bit-identical output.
func Generate(p Profile, start, end time.Time, seed uint64) (*Scenario, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !start.Before(end) {
		return nil, fmt.Errorf("faultsim: empty window [%v, %v)", start, end)
	}
	cluster := topology.New(p.Spec)
	scn := &Scenario{Profile: p, Cluster: cluster, Start: start, End: end}
	root := rng.New(seed)
	g := &generator{p: p, scn: scn, r: root.Split("emit"), nextJob: synthJobBase}
	if kind, ok := interconnect.KindFor(p.Spec.Fabric); ok {
		g.fabric = interconnect.New(cluster, kind)
	}

	// 1. Background workload.
	scn.Jobs = workload.Generate(cluster, p.Workload, start, end, 1, root.Split("workload"))

	// Reserve the record slab up front: the stream is dominated by
	// per-job scheduler records (start/end/placement/exit plus sampled
	// epilogues) and per-node-per-day background chatter, so jobs and
	// node-days bound it well enough to avoid repeated regrowth copies.
	days := int(end.Sub(start).Hours()/24) + 1
	scn.Records = make([]events.Record, 0, 8*len(scn.Jobs)+6*cluster.NumNodes()*days)

	// 2. Failures: episodes and singles, day by day.
	g.genFailures(root.Split("failures"))

	// 3. Benign background noise.
	g.genBackground(root.Split("background"))

	// 4. S5-style per-node conditions.
	if p.S5ConditionMix != nil {
		g.genConditions(root.Split("conditions"))
	}

	// 5. System-wide outages.
	g.genSWOs(root.Split("swo"))

	// 6. Scheduler events for every job.
	g.genSchedulerEvents(root.Split("sched"))

	events.SortByTime(scn.Records)
	sort.Slice(scn.Failures, func(i, j int) bool { return scn.Failures[i].Time.Before(scn.Failures[j].Time) })
	return scn, nil
}

// drawCause samples the profile's failure-level cause mix.
func drawCause(mix []CauseWeight, r *rng.Rand) faults.Cause {
	weights := make([]float64, len(mix))
	for i, cw := range mix {
		weights[i] = cw.Weight
	}
	return mix[r.Categorical(weights)].Cause
}

// genFailures produces the ground-truth failures and their log
// signatures.
func (g *generator) genFailures(r *rng.Rand) {
	p := g.p
	days := int(g.scn.End.Sub(g.scn.Start).Hours() / 24)
	if days == 0 {
		days = 1
	}
	weekMult := 1.0
	for day := 0; day < days; day++ {
		if day%7 == 0 {
			// Per-week burst tightness: sweeps the Fig 3 MTBF range
			// (1.5–12 minutes) across weeks.
			weekMult = r.LogNormal(0, 0.9)
			if weekMult < 0.3 {
				weekMult = 0.3
			}
			if weekMult > 5 {
				weekMult = 5
			}
		}
		dayStart := g.scn.Start.Add(time.Duration(day) * 24 * time.Hour)
		usedToday := map[cname.Name]bool{}

		// Clustered episodes.
		for e := 0; e < r.Poisson(p.EpisodesPerDay); e++ {
			g.genEpisode(dayStart, weekMult, usedToday, r)
		}
		// Isolated singles.
		for s := 0; s < r.Poisson(p.SinglesPerDay); s++ {
			at := dayStart.Add(time.Duration(r.Float64() * float64(24*time.Hour)))
			node := g.pickNode(usedToday, r)
			if !node.IsValid() {
				continue
			}
			cause := drawCause(p.CauseMix, r)
			g.emitOne(node, at, cause, 0, 0, r)
		}
	}
}

// episodeCauseMix reweights the failure-level cause mix for per-episode
// drawing: application-triggered episodes span ~AppEpisodeMeanNodes
// nodes while hardware/software episodes stay blade-local (~3 nodes),
// so each weight is divided by its expected episode size to keep the
// FAILURE-level mix equal to the profile's weights.
func episodeCauseMix(p Profile) []CauseWeight {
	hwSize := 2 + float64(p.HwEpisodeMaxNodes-2)/2
	if hwSize < 2 {
		hwSize = 2
	}
	out := make([]CauseWeight, len(p.CauseMix))
	for i, cw := range p.CauseMix {
		size := hwSize
		if cw.Cause.ApplicationTriggered() {
			size = p.AppEpisodeMeanNodes
			if size < 2 {
				size = 2
			}
		}
		out[i] = CauseWeight{Cause: cw.Cause, Weight: cw.Weight / size}
	}
	return out
}

// genEpisode produces one clustered multi-node failure: either an
// application-triggered scatter (same job, distant blades) or a
// hardware/software blade-local cluster.
func (g *generator) genEpisode(dayStart time.Time, weekMult float64, used map[cname.Name]bool, r *rng.Rand) {
	p := g.p
	g.episode++
	cause := drawCause(episodeCauseMix(p), r)
	at := dayStart.Add(time.Duration(r.Float64() * float64(22*time.Hour)))
	gapMean := p.BurstGapMeanMin * weekMult

	var nodes []cname.Name
	if cause.ApplicationTriggered() {
		size := 2 + r.Poisson(p.AppEpisodeMeanNodes-2)
		if size > g.scn.Cluster.NumNodes()/2 {
			size = g.scn.Cluster.NumNodes() / 2
		}
		for _, nid := range r.SampleInts(g.scn.Cluster.NumNodes(), size) {
			n := g.scn.Cluster.Node(nid)
			if !used[n] {
				nodes = append(nodes, n)
			}
		}
	} else {
		// Blade-local cluster: 2..4 nodes of one blade share the fault
		// (Fig 18's same-reason blade failures).
		blades := g.scn.Cluster.Blades()
		blade := blades[r.Intn(len(blades))]
		bn := g.scn.Cluster.BladeNodes(blade)
		size := 2 + r.Intn(p.HwEpisodeMaxNodes-1)
		if size > len(bn) {
			size = len(bn)
		}
		for _, i := range r.SampleInts(len(bn), size) {
			if !used[bn[i]] {
				nodes = append(nodes, bn[i])
			}
		}
	}
	if len(nodes) == 0 {
		return
	}

	// Application-triggered episodes share a synthesized job covering
	// the failing nodes (Observation 8's temporal locality under one
	// job ID).
	var jobID int64
	var app string
	if cause.ApplicationTriggered() {
		jobID, app = g.synthJob(nodes, at, r)
	}

	t := at
	for _, n := range nodes {
		used[n] = true
		g.emitOne(n, t, cause, jobID, g.episode, r)
		gap := r.Exp(gapMean * float64(time.Minute))
		if gap < float64(10*time.Second) {
			gap = float64(10 * time.Second)
		}
		t = t.Add(time.Duration(gap))
	}
	_ = app
}

// emitOne creates the ground-truth failure entry and its log signature.
// episode is 0 for isolated singles.
func (g *generator) emitOne(node cname.Name, at time.Time, cause faults.Cause, jobID int64, episode int, r *rng.Rand) {
	p := g.p
	at = at.Truncate(time.Microsecond) // match the log formats' resolution
	f := Failure{
		Node:    node,
		Time:    at,
		Cause:   cause,
		JobID:   jobID,
		Episode: episode,
	}
	// A minority of filesystem bugs are NOT application-prompted
	// (Observation 5): they skip job attribution and show external
	// indicators instead.
	fsExternal := jobID == 0 && cause == faults.CauseFilesystemBug && r.Bool(p.PFilesystemExternal)
	// Application-linked singles attach to whatever job holds the node.
	if jobID == 0 && !fsExternal && cause.ApplicationTriggered() {
		if j := workload.JobOnNode(g.scn.Jobs, node, at); j != nil {
			f.JobID = j.ID
		} else {
			f.JobID, _ = g.synthJob([]cname.Name{node}, at, r)
		}
	}
	// Internal precursor lead.
	leadMin := r.Exp(p.InternalLeadMeanMin)
	if leadMin < 0.5 {
		leadMin = 0.5
	}
	if leadMin > 15 {
		leadMin = 15
	}
	f.InternalLead = time.Duration(leadMin * float64(time.Minute))
	// External early indicators: hardware-rooted fail-slow failures and
	// the non-application filesystem minority. Application-triggered
	// (job-linked) failures get none.
	hasExt := false
	switch {
	case f.JobID != 0:
		hasExt = false
	case cause == faults.CauseFilesystemBug:
		hasExt = fsExternal
	default:
		hasExt = cause.HasExternalIndicators()
	}
	if hasExt {
		f.HasExternalIndicator = true
		f.Mode = faults.FailSlow
		factor := p.ExternalLeadFactor * (0.8 + 0.4*r.Float64())
		f.ExternalLead = time.Duration(float64(f.InternalLead) * factor)
	} else {
		f.Mode = faults.FailStop
	}
	app := g.appForJob(f.JobID)
	g.scn.Failures = append(g.scn.Failures, f)
	g.emitFailure(&f, app)
}

// synthJob creates a job that covers the given failing nodes (plus extra
// healthy ones) and returns its ID and application name.
func (g *generator) synthJob(failing []cname.Name, at time.Time, r *rng.Rand) (int64, string) {
	apps := workload.DefaultApps()
	app := apps[r.Intn(len(apps))]
	extra := r.Intn(2 * len(failing))
	nodes := append([]cname.Name{}, failing...)
	for _, nid := range r.SampleInts(g.scn.Cluster.NumNodes(), extra) {
		nodes = append(nodes, g.scn.Cluster.Node(nid))
	}
	g.nextJob++
	j := workload.Job{
		ID:       g.nextJob,
		App:      app.Name,
		User:     fmt.Sprintf("user%02d", r.Intn(40)),
		Nodes:    dedupeNodes(nodes),
		Submit:   at.Add(-time.Duration(1+r.Intn(3)) * time.Hour),
		Start:    at.Add(-time.Duration(30+r.Intn(90)) * time.Minute),
		End:      at.Add(time.Duration(5+r.Intn(20)) * time.Minute),
		State:    workload.StateNodeFail,
		ExitCode: 1,
		ReqMemMB: 16 * 1024,
	}
	g.scn.Jobs = append(g.scn.Jobs, j)
	return j.ID, app.Name
}

// appForJob resolves a job ID to its application name ("" when jobID is
// zero or unknown).
func (g *generator) appForJob(jobID int64) string {
	if jobID == 0 {
		return "app"
	}
	for i := range g.scn.Jobs {
		if g.scn.Jobs[i].ID == jobID {
			return g.scn.Jobs[i].App
		}
	}
	return "app"
}

func dedupeNodes(in []cname.Name) []cname.Name {
	seen := make(map[cname.Name]bool, len(in))
	out := in[:0]
	for _, n := range in {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return cname.Compare(out[i], out[j]) < 0 })
	return out
}

// pickNode selects a random node not yet failed today.
func (g *generator) pickNode(used map[cname.Name]bool, r *rng.Rand) cname.Name {
	for attempt := 0; attempt < 20; attempt++ {
		n := g.scn.Cluster.Node(r.Intn(g.scn.Cluster.NumNodes()))
		if !used[n] {
			used[n] = true
			return n
		}
	}
	return cname.Name{}
}

// genSWOs emits the rare system-wide outages: service-related intended
// shutdowns of the whole machine (excluded from anomalous failures).
func (g *generator) genSWOs(r *rng.Rand) {
	months := g.scn.End.Sub(g.scn.Start).Hours() / (24 * 30)
	n := r.Poisson(g.p.SWOsPerMonth * months)
	for i := 0; i < n; i++ {
		at := g.scn.Start.Add(time.Duration(r.Float64() * float64(g.scn.End.Sub(g.scn.Start))))
		g.scn.SWOCount++
		for _, node := range g.scn.Cluster.Nodes() {
			g.scheduledShutdown(at.Add(time.Duration(r.Intn(600))*time.Second), node)
		}
	}
}

// genSchedulerEvents renders every job's scheduler log records, plus
// the ALPS placement/exit records that map apids to jobs on Cray
// systems.
func (g *generator) genSchedulerEvents(r *rng.Rand) {
	for i := range g.scn.Jobs {
		j := &g.scn.Jobs[i]
		// One compressed render of the allocation serves the start, end,
		// and ALPS placement records.
		ns := j.NodesString()
		g.add(workload.StartEventNodes(j, ns))
		g.add(workload.EndEventNodes(j, ns))
		if g.p.Spec.Cray {
			l := alps.Launch{
				Apid:     g.apidFor(j.ID),
				JobID:    j.ID,
				Nodes:    j.Nodes,
				NodesStr: ns,
				Start:    j.Start.Add(time.Duration(1+r.Intn(20)) * time.Second),
				End:      j.End,
			}
			g.scn.Launches = append(g.scn.Launches, l)
			g.add(alps.PlacementEvent(l))
			g.add(alps.ExitEvent(l, j.ExitCode))
		}
		// Epilogue on a sample of the allocation.
		n := len(j.Nodes)
		if n > 3 {
			n = 3
		}
		for _, idx := range r.SampleInts(len(j.Nodes), n) {
			g.add(workload.EpilogueEvent(j.End.Add(time.Duration(5+r.Intn(30))*time.Second), j.Nodes[idx], j.ID))
		}
	}
}

// genConditions drives the S5 per-node condition mix (Fig 15): each node
// is assigned one dominant condition class and emits matching internal
// events over the window, without failing.
func (g *generator) genConditions(r *rng.Rand) {
	mix := g.p.S5ConditionMix
	weights := make([]float64, len(mix))
	for i, cw := range mix {
		weights[i] = cw.Weight
	}
	span := g.scn.End.Sub(g.scn.Start)
	for _, node := range g.scn.Cluster.Nodes() {
		cond := mix[r.Categorical(weights)].Cause
		nEvents := 1 + r.Intn(4)
		for e := 0; e < nEvents; e++ {
			at := g.scn.Start.Add(time.Duration(r.Float64() * float64(span)))
			g.emitCondition(node, at, cond, r)
		}
	}
}

// emitCondition renders one benign node condition event.
func (g *generator) emitCondition(node cname.Name, at time.Time, cond faults.Cause, r *rng.Rand) {
	switch cond {
	case faults.CauseHungTask:
		rec := events.Record{
			Time: at, Stream: events.StreamConsole, Component: node,
			Severity: events.SevError, Category: faults.HungTask.Category(),
			Msg: "INFO: task flush-0:23 blocked for more than 120 seconds",
		}
		rec.SetField("trace", synthTraceField(faults.CauseHungTask, g.r))
		g.add(rec)
	case faults.CauseOOM:
		rec := events.Record{
			Time: at, Stream: events.StreamConsole, Component: node,
			Severity: events.SevError, Category: faults.OOMKiller.Category(),
			Msg: "Out of memory: Kill process (batch) score 901",
		}
		rec.SetField("trace", synthTraceField(faults.CauseOOM, g.r))
		g.add(rec)
	case faults.CauseFilesystemBug:
		// S5's Lustre errors come without call traces (Fig 15).
		g.console(at, node, faults.LustreIOError, events.SevError,
			"LustreError: 30-3: I/O error on client")
	case faults.CauseSegFault:
		if r.Bool(0.5) {
			g.console(at, node, faults.SegFault, events.SevError,
				"batch[2231]: segfault at 8 ip 00400f2c sp 7ffd error 6")
		} else {
			g.console(at, node, faults.PageAllocFailure, events.SevWarning,
				"batch: page allocation failure: order:3")
		}
	case faults.CauseHardwareOther:
		if r.Bool(0.5) {
			g.console(at, node, faults.GPUError, events.SevError,
				"NVRM: Xid (PCI:0000:08:00): 48, GPU memory page fault")
		} else {
			g.console(at, node, faults.DiskError, events.SevError,
				"blk_update_request: I/O error, dev sdb, sector 102400")
		}
	default:
		g.console(at, node, faults.SoftwareTrap, events.SevWarning,
			"trap invalid opcode in user context (handled)")
	}
}
