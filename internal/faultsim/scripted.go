package faultsim

import (
	"fmt"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/faults"
	"hpcfail/internal/hss"
	"hpcfail/internal/rng"
	"hpcfail/internal/topology"
	"hpcfail/internal/workload"
)

// OverallocSpec is one Fig 17 job: how many of its nodes were granted
// more memory than physically available, and how many of those failed.
type OverallocSpec struct {
	JobID         int64
	Overallocated int
	Failed        int
}

// fig17Jobs reproduces the paper's Fig 17 day: 53 failures over 16
// jobs; J5 and J8 lose every overallocated node, J1 and J16 lose 1 and
// 6 of 600 and 683.
var fig17Jobs = []struct{ over, failed int }{
	{600, 1}, {24, 2}, {36, 3}, {48, 3}, {8, 8}, {30, 4}, {16, 2}, {5, 5},
	{22, 1}, {28, 2}, {34, 3}, {18, 4}, {26, 2}, {30, 4}, {64, 3}, {683, 6},
}

// OverallocationDay builds the scripted Fig 17 scenario: one day on an
// S4-sized cluster during which the scheduler overallocates memory for
// 16 jobs and a subset of the overallocated nodes fail with memory
// exhaustion.
func OverallocationDay(day time.Time, seed uint64) (*Scenario, []OverallocSpec, error) {
	spec, err := topology.ProfileByID("S3")
	if err != nil {
		return nil, nil, err
	}
	p, err := DefaultProfile("S3")
	if err != nil {
		return nil, nil, err
	}
	// The scripted day provides all failures itself.
	p.EpisodesPerDay = 0
	p.SinglesPerDay = 0
	p.FloodBladeIdx = nil
	p.FloodStopIdx = -1
	p.Spec = spec

	cluster := topology.New(spec)
	scn := &Scenario{Profile: p, Cluster: cluster, Start: day, End: day.Add(24 * time.Hour)}
	root := rng.New(seed)
	g := &generator{p: p, scn: scn, r: root.Split("emit"), nextJob: synthJobBase}
	r := root.Split("script")

	const nodeMemMB = 64 * 1024
	var specs []OverallocSpec
	nextNID := 0
	for i, jf := range fig17Jobs {
		// Allocate a contiguous block so jobs do not overlap.
		nodes := make([]cname.Name, 0, jf.over)
		for k := 0; k < jf.over && nextNID < cluster.NumNodes(); k++ {
			nodes = append(nodes, cluster.Node(nextNID))
			nextNID++
		}
		if len(nodes) < jf.failed {
			return nil, nil, fmt.Errorf("faultsim: cluster too small for fig17 job %d", i+1)
		}
		start := day.Add(time.Duration(1+i) * 30 * time.Minute)
		g.nextJob++
		j := workload.Job{
			ID:            g.nextJob,
			App:           "genomics_pipe",
			User:          fmt.Sprintf("user%02d", r.Intn(40)),
			Nodes:         nodes,
			Submit:        start.Add(-20 * time.Minute),
			Start:         start,
			End:           start.Add(time.Duration(60+r.Intn(120)) * time.Minute),
			State:         workload.StateNodeFail,
			ExitCode:      1,
			ReqMemMB:      nodeMemMB + 16*1024,
			Overallocated: true,
		}
		if jf.failed == 0 {
			j.State = workload.StateCompleted
			j.ExitCode = 0
		}
		scn.Jobs = append(scn.Jobs, j)
		specs = append(specs, OverallocSpec{JobID: j.ID, Overallocated: len(nodes), Failed: jf.failed})
		// The failing subset dies of memory exhaustion spread across the
		// job's run.
		for _, idx := range r.SampleInts(len(nodes), jf.failed) {
			at := j.Start.Add(time.Duration(10+r.Intn(45)) * time.Minute)
			g.emitOne(nodes[idx], at, faults.CauseOOM, j.ID, i+1, r)
		}
	}
	g.genSchedulerEvents(root.Split("sched"))
	events.SortByTime(scn.Records)
	return scn, specs, nil
}

// CaseStudy is one Table V scenario with the expected diagnosis.
type CaseStudy struct {
	// Name summarises the case.
	Name string
	// Scenario holds the scripted logs.
	Scenario *Scenario
	// FailureCount is the number of planted failures.
	FailureCount int
	// ExpectedCause is the root cause the pipeline should infer.
	ExpectedCause faults.Cause
	// ExpectAppTriggered marks cases whose origin is the application.
	ExpectAppTriggered bool
	// ExpectExternalIndicators marks fail-slow cases with early
	// external evidence.
	ExpectExternalIndicators bool
	// Notes quotes the paper's inference.
	Notes string
}

// caseBuilder carries shared scripted-scenario plumbing.
type caseBuilder struct {
	g *generator
	r *rng.Rand
}

func newCase(at time.Time, seed uint64) *caseBuilder {
	spec := topology.Spec{ID: "CS", Machine: "Cray XC40", Nodes: 192, CabinetCols: 1,
		Scheduler: topology.SchedulerSlurm, Fabric: topology.AriesDragonfly, Cray: true}
	p, _ := DefaultProfile("S3")
	p.Spec = spec
	p.EpisodesPerDay = 0
	p.SinglesPerDay = 0
	cluster := topology.New(spec)
	scn := &Scenario{Profile: p, Cluster: cluster, Start: at.Add(-12 * time.Hour), End: at.Add(12 * time.Hour)}
	root := rng.New(seed)
	return &caseBuilder{
		g: &generator{p: p, scn: scn, r: root.Split("emit"), nextJob: synthJobBase},
		r: root.Split("script"),
	}
}

func (b *caseBuilder) finish() *Scenario {
	b.g.genSchedulerEvents(b.r.Split("sched"))
	events.SortByTime(b.g.scn.Records)
	return b.g.scn
}

// BuildCaseStudies constructs the five Table V cases around the given
// reference time.
func BuildCaseStudies(at time.Time, seed uint64) []CaseStudy {
	var out []CaseStudy

	// Case 1: L0_sysd_MCE followed by NHC warnings; siblings log benign
	// correctable errors; no environmental or job indications. The
	// paper could not deduce a root cause.
	{
		b := newCase(at, seed+1)
		node := b.g.scn.Cluster.Node(10)
		b.g.add(events.Record{
			Time: at.Add(-6 * time.Minute), Stream: events.StreamERD, Component: node,
			Severity: events.SevError, Category: faults.L0SysdMCE.Category(),
			Msg: "L0_sysd_mce: memory error reported by blade controller",
		})
		for _, sib := range node.Siblings() {
			if b.g.scn.Cluster.Contains(sib) {
				b.g.console(at.Add(-4*time.Minute), sib, faults.CorrectableMemErr,
					events.SevWarning, "EDAC MC0: corrected memory error on DIMM")
			}
		}
		b.g.shutdown(at, node)
		b.g.nhfAt(at.Add(30*time.Second), node, NHFFailed)
		b.g.scn.Failures = append(b.g.scn.Failures, Failure{Node: node, Time: at, Cause: faults.CauseUnknown})
		out = append(out, CaseStudy{
			Name: "case1-l0-sysd-mce", Scenario: b.finish(), FailureCount: 1,
			ExpectedCause: faults.CauseUnknown,
			// The L0_sysd_mce record is an external (blade controller)
			// event preceding the failure, so the pipeline surfaces it
			// as an indicator — but the cause stays undeducible.
			ExpectExternalIndicators: true,
			Notes:                    "Potential root cause could not be deduced",
		})
	}

	// Case 2: three failures, neither spatially nor temporally close,
	// sharing the H/W error → MCE → kernel oops pattern; link errors
	// and temperature violations distant from the failure times.
	{
		b := newCase(at, seed+2)
		times := []time.Duration{-8 * time.Hour, -3 * time.Hour, 0}
		for i, dt := range times {
			node := b.g.scn.Cluster.Node(20 + 40*i)
			b.g.emitOne(node, at.Add(dt), faults.CauseMCE, 0, 0, b.r)
		}
		// Distant, uncorrelated environmental chatter.
		blade := b.g.scn.Cluster.Blades()[30]
		b.g.add(hss.LinkErrorEvent(at.Add(-11*time.Hour), blade, 3))
		b.g.add(hss.SEDCWarningEvent(at.Add(-10*time.Hour), blade, faults.SEDCTemp, "temperature", 8.2, true))
		out = append(out, CaseStudy{
			Name: "case2-mce-chain", Scenario: b.finish(), FailureCount: 3,
			ExpectedCause: faults.CauseMCE, ExpectExternalIndicators: true,
			Notes: "CPU corruptions and MCEs affecting the file system causing failure",
		})
	}

	// Case 3: six failures at similar times, all running the same
	// application; user-killed then OOM call traces; no external
	// indications. Application-caused memory exhaustion.
	{
		b := newCase(at, seed+3)
		var nodes []cname.Name
		for i := 0; i < 6; i++ {
			nodes = append(nodes, b.g.scn.Cluster.Node(5+17*i))
		}
		jobID, _ := b.g.synthJob(nodes, at, b.r)
		for i, n := range nodes {
			b.g.console(at.Add(time.Duration(i)*time.Minute-5*time.Minute), n, faults.UserKilled,
				events.SevWarning, "slurmstepd: user-killed process group")
			b.g.emitOne(n, at.Add(time.Duration(i)*time.Minute), faults.CauseOOM, jobID, 1, b.r)
		}
		out = append(out, CaseStudy{
			Name: "case3-app-oom", Scenario: b.finish(), FailureCount: 6,
			ExpectedCause: faults.CauseOOM, ExpectAppTriggered: true,
			Notes: "Application-caused memory exhaustion; nodes fail NHC tests",
		})
	}

	// Case 4: one failure: LustreErrors then a kernel paging-request
	// oops; blade siblings fine; the scheduled job aborted.
	{
		b := newCase(at, seed+4)
		node := b.g.scn.Cluster.Node(77)
		jobID, _ := b.g.synthJob([]cname.Name{node}, at, b.r)
		b.g.emitOne(node, at, faults.CauseFilesystemBug, jobID, 0, b.r)
		out = append(out, CaseStudy{
			Name: "case4-app-fs-bug", Scenario: b.finish(), FailureCount: 1,
			ExpectedCause: faults.CauseFilesystemBug, ExpectAppTriggered: true,
			Notes: "Application-triggered file system bug causing failure",
		})
	}

	// Case 5: one failure with early ec_hw_errors and link errors well
	// before the internal MCE chain — fail-slow memory degradation.
	{
		b := newCase(at, seed+5)
		node := b.g.scn.Cluster.Node(120)
		// emitOne gives MCE failures external indicators automatically;
		// sibling benign events round out the picture.
		for _, sib := range node.Siblings() {
			if b.g.scn.Cluster.Contains(sib) {
				b.g.console(at.Add(-30*time.Minute), sib, faults.CorrectableMemErr,
					events.SevWarning, "EDAC MC0: corrected memory error on DIMM")
			}
		}
		b.g.emitOne(node, at, faults.CauseMCE, 0, 0, b.r)
		out = append(out, CaseStudy{
			Name: "case5-fail-slow", Scenario: b.finish(), FailureCount: 1,
			ExpectedCause: faults.CauseMCE, ExpectExternalIndicators: true,
			Notes: "Fail-slow symptoms of memory failing the node (degraded h/w)",
		})
	}
	return out
}
