package faultsim

import (
	"testing"
	"time"

	"hpcfail/internal/events"
	"hpcfail/internal/faults"
)

func TestOverallocationDayStructure(t *testing.T) {
	day := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	scn, specs, err := OverallocationDay(day, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 16 {
		t.Fatalf("got %d job specs, want 16", len(specs))
	}
	totalPlanted := 0
	for _, s := range specs {
		totalPlanted += s.Failed
		if s.Failed > s.Overallocated {
			t.Errorf("job %d fails more nodes than it overallocated", s.JobID)
		}
	}
	if totalPlanted != 53 {
		t.Errorf("planted failures = %d, want 53", totalPlanted)
	}
	if len(scn.Failures) != 53 {
		t.Errorf("scenario failures = %d, want 53", len(scn.Failures))
	}
	// All failures are OOM, job-linked, within the day.
	for _, f := range scn.Failures {
		if f.Cause != faults.CauseOOM || f.JobID == 0 {
			t.Errorf("fig17 failure not job-linked OOM: %+v", f)
		}
		if f.Time.Before(day) || !f.Time.Before(day.Add(24*time.Hour)) {
			t.Errorf("failure outside the day: %v", f.Time)
		}
	}
	// Jobs J5 (index 4) and J8 (index 7) lose everything.
	if specs[4].Overallocated != specs[4].Failed || specs[7].Overallocated != specs[7].Failed {
		t.Error("J5/J8 should lose every overallocated node")
	}
	// Jobs do not overlap nodes (contiguous block allocation).
	seen := map[string]int64{}
	for _, j := range scn.Jobs {
		for _, n := range j.Nodes {
			if prev, dup := seen[n.String()]; dup {
				t.Fatalf("node %v allocated to jobs %d and %d", n, prev, j.ID)
			}
			seen[n.String()] = j.ID
		}
	}
	// Deterministic.
	scn2, _, err := OverallocationDay(day, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(scn2.Records) != len(scn.Records) {
		t.Error("OverallocationDay not deterministic")
	}
}

func TestBuildCaseStudiesStructure(t *testing.T) {
	at := time.Date(2015, 3, 2, 12, 0, 0, 0, time.UTC)
	cases := BuildCaseStudies(at, 7)
	if len(cases) != 5 {
		t.Fatalf("got %d cases, want 5", len(cases))
	}
	wantFailures := []int{1, 3, 6, 1, 1}
	for i, cs := range cases {
		if cs.Name == "" || cs.Notes == "" {
			t.Errorf("case %d missing metadata", i)
		}
		if cs.FailureCount != wantFailures[i] {
			t.Errorf("%s failure count = %d, want %d", cs.Name, cs.FailureCount, wantFailures[i])
		}
		if len(cs.Scenario.Records) == 0 {
			t.Errorf("%s has no records", cs.Name)
		}
		// Records sorted.
		for j := 1; j < len(cs.Scenario.Records); j++ {
			if cs.Scenario.Records[j].Time.Before(cs.Scenario.Records[j-1].Time) {
				t.Fatalf("%s records unsorted", cs.Name)
			}
		}
	}
	// Case 3 is the application-OOM cluster: all failures share a job.
	c3 := cases[2]
	jobs := map[int64]bool{}
	for _, r := range c3.Scenario.Records {
		if r.Category == "nhc_admindown" && r.JobID != 0 {
			jobs[r.JobID] = true
		}
	}
	if len(jobs) != 1 {
		t.Errorf("case 3 should share one job, got %v", jobs)
	}
	// Case 5 carries early external hardware indicators.
	c5 := cases[4]
	ext := 0
	for _, r := range c5.Scenario.Records {
		if r.Stream == events.StreamERD && r.Category == faults.ECHwError.Category() {
			ext++
		}
	}
	if ext == 0 {
		t.Error("case 5 should include ec_hw_errors indicators")
	}
}
