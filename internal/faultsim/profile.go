// Package faultsim is the discrete-event scenario generator: it drives
// the topology, workload, HSS, SEDC, NHC and stack-trace models to
// produce (a) a ground-truth failure timeline and (b) the full multi-
// stream event log a production system of the paper's era would have
// recorded.
//
// The per-system profiles are calibrated so that the analysis pipeline,
// run over the *logs alone*, reproduces the paper's reported statistics:
// failure burst tightness (Fig 3), dominant daily causes (Fig 4), NHF/NVF
// failure correspondence (Figs 5–6), weak blade/cabinet correlation
// (Figs 7–9), benign error floods (Fig 10), job exit mixes (Fig 12),
// lead-time enhancement (Fig 13), false-positive rates (Fig 14), and the
// per-system root-cause mixes (Figs 15–16, §III-F).
package faultsim

import (
	"fmt"
	"time"

	"hpcfail/internal/faults"
	"hpcfail/internal/topology"
	"hpcfail/internal/workload"
)

// CauseWeight pairs a root cause with its share of failures. A slice
// (not a map) keeps iteration deterministic.
type CauseWeight struct {
	Cause  faults.Cause
	Weight float64
}

// Profile holds the per-system generation rates. All "per day" rates are
// Poisson means.
type Profile struct {
	// Spec is the Table I system description.
	Spec topology.Spec

	// EpisodesPerDay is the rate of clustered-failure episodes (several
	// nodes failing minutes apart from one malfunction — the paper's
	// dominant daily cause).
	EpisodesPerDay float64
	// SinglesPerDay is the rate of isolated single-node failures.
	SinglesPerDay float64
	// AppEpisodeMeanNodes is the mean size of an application-triggered
	// episode (same job, spatially scattered nodes).
	AppEpisodeMeanNodes float64
	// HwEpisodeMaxNodes caps hardware episodes (same blade; at most a
	// blade's worth).
	HwEpisodeMaxNodes int
	// BurstGapMeanMin is the base within-episode inter-failure gap in
	// minutes; per-week multipliers sweep it across the paper's 1.5–12.1
	// minute MTBF range.
	BurstGapMeanMin float64

	// CauseMix is the failure-level root-cause distribution.
	CauseMix []CauseWeight

	// InternalLeadMeanMin is the mean minutes between the first internal
	// precursor message and the failure.
	InternalLeadMeanMin float64
	// ExternalLeadFactor multiplies the internal lead to place early
	// external indicators (the paper's ~5× enhancement).
	ExternalLeadFactor float64
	// PFilesystemExternal is the chance a filesystem-bug failure gets
	// external indicators (only the non-application-prompted minority).
	PFilesystemExternal float64

	// Benign background rates.

	// BenignNHFPoweroffPerDay: nodes powered off (operator), raising
	// NHFs that are not failures.
	BenignNHFPoweroffPerDay float64
	// BenignNHFSkippedPerDay: transient heartbeat skips.
	BenignNHFSkippedPerDay float64
	// BenignNVFPerDay: voltage faults on nodes that do not fail (rare).
	BenignNVFPerDay float64
	// PFailureNVF is the chance a hardware-caused failure logs an NVF.
	PFailureNVF float64

	// HwErrNodesPerDay, MCENodesPerDay, LustreIONodesPerDay and
	// PageFaultLockNodesPerDay size the Fig 10 populations: nodes that
	// log errors without failing.
	HwErrNodesPerDay, MCENodesPerDay, LustreIONodesPerDay, PageFaultLockNodesPerDay float64

	// SEDCScatterBladesPerDay: blades emitting a handful of benign SEDC
	// warnings per day.
	SEDCScatterBladesPerDay float64
	// FloodBladeIdx are blade indices (into cluster.Blades()) with
	// miscalibrated sensors warning on nearly every scan (Fig 9 blades
	// 1, 5, 8).
	FloodBladeIdx []int
	// FloodStopHour, if >= 0, names a flood blade index whose flood
	// stops at StopsAtHour on each day (Fig 9 blade 7).
	FloodStopIdx int
	// StopsAtHour is the hour of day the FloodStopIdx blade goes quiet.
	StopsAtHour int
	// SEDCScanInterval is the controller scan period for flood blades.
	SEDCScanInterval time.Duration

	// FaultyCabinetFrac: the fraction of cabinets logging health faults
	// on any given day; each emits CabinetFaultEventsMean events (the
	// paper's "> 1400 mean daily counts" concentrated on a few
	// cabinets).
	FaultyCabinetFrac, CabinetFaultEventsMean float64
	// FaultyBladeFrac: the per-day fraction of blades logging health
	// faults, each with BladeFaultEventsMean events.
	FaultyBladeFrac, BladeFaultEventsMean float64
	// PBladeFaultNearFailure / PCabFaultNearFailure: chance a failure's
	// own blade/cabinet logs a health fault in its unhealthy window
	// (Fig 7's 23–59 % / 19–58 %).
	PBladeFaultNearFailure, PCabFaultNearFailure float64

	// LaneEventsPerDay: benign HSN lane degradations across the fabric
	// (failovers almost always succeed — network chatter, not failure
	// prediction signal).
	LaneEventsPerDay float64
	// PFailoverOK is the lane failover success probability.
	PFailoverOK float64

	// NearMissPerDay: healthy nodes emitting failure-like internal
	// sequences that never terminate in a failure (the Fig 14 false-
	// positive source).
	NearMissPerDay float64
	// PNearMissExternal: fraction of near-misses that also show nearby
	// external warnings (lower than for true failures, which is why
	// external correlation cuts the FPR).
	PNearMissExternal float64

	// SWOsPerMonth: system-wide outages (service-related intended
	// shutdowns), excluded from anomalous failures.
	SWOsPerMonth float64

	// Workload is the background job mix.
	Workload workload.Config

	// S5ConditionMix, when non-nil, drives the institutional-cluster
	// per-node condition breakdown (Fig 15) instead of the Cray external
	// machinery.
	S5ConditionMix []CauseWeight
}

// Validate checks internal consistency.
func (p *Profile) Validate() error {
	if p.Spec.Nodes <= 0 {
		return fmt.Errorf("faultsim: profile %q has no nodes", p.Spec.ID)
	}
	if len(p.CauseMix) == 0 {
		return fmt.Errorf("faultsim: profile %q has empty cause mix", p.Spec.ID)
	}
	total := 0.0
	for _, cw := range p.CauseMix {
		if cw.Weight < 0 {
			return fmt.Errorf("faultsim: negative weight for %v", cw.Cause)
		}
		total += cw.Weight
	}
	if total <= 0 {
		return fmt.Errorf("faultsim: cause mix sums to %v", total)
	}
	if p.ExternalLeadFactor < 1 {
		return fmt.Errorf("faultsim: external lead factor %v < 1", p.ExternalLeadFactor)
	}
	return nil
}

// DefaultProfile returns the calibrated profile for a Table I system
// ("S1".."S5").
func DefaultProfile(systemID string) (Profile, error) {
	spec, err := topology.ProfileByID(systemID)
	if err != nil {
		return Profile{}, err
	}
	p := Profile{
		Spec:                spec,
		EpisodesPerDay:      1.2,
		SinglesPerDay:       1.5,
		AppEpisodeMeanNodes: 12,
		HwEpisodeMaxNodes:   4,
		BurstGapMeanMin:     3.0,
		InternalLeadMeanMin: 4.0,
		ExternalLeadFactor:  5.0,
		PFilesystemExternal: 0.10,

		BenignNHFPoweroffPerDay: 4.0,
		BenignNHFSkippedPerDay:  4.5,
		BenignNVFPerDay:         0.05,
		PFailureNVF:             0.18,

		HwErrNodesPerDay:         18,
		MCENodesPerDay:           10,
		LustreIONodesPerDay:      26,
		PageFaultLockNodesPerDay: 34,

		SEDCScatterBladesPerDay: 55,
		FloodBladeIdx:           []int{1, 5, 8},
		FloodStopIdx:            7,
		StopsAtHour:             14,
		SEDCScanInterval:        time.Minute,

		FaultyCabinetFrac:      0.33,
		CabinetFaultEventsMean: 140,
		FaultyBladeFrac:        0.015,
		BladeFaultEventsMean:   4,
		PBladeFaultNearFailure: 0.40,
		PCabFaultNearFailure:   0.25,

		LaneEventsPerDay: 8,
		PFailoverOK:      0.95,

		NearMissPerDay:    3.0,
		PNearMissExternal: 0.20,

		SWOsPerMonth: 0.4,

		Workload: workload.DefaultConfig(),
	}
	switch systemID {
	case "S1":
		p.CauseMix = []CauseWeight{
			{faults.CauseMCE, 0.14}, {faults.CauseCPUCorruption, 0.05},
			{faults.CauseHardwareOther, 0.06}, {faults.CauseKernelBug, 0.08},
			{faults.CauseCPUStall, 0.09}, {faults.CauseFilesystemBug, 0.24},
			{faults.CauseOOM, 0.12}, {faults.CauseAppExit, 0.17},
			{faults.CauseSegFault, 0.03}, {faults.CauseUnknown, 0.02},
		}
	case "S2":
		// Fig 16: app-exit 37.5 %, FS bugs 26.78 %, OOM 16.07 %,
		// kernel bugs 7.14 %, CPU stalls & driver/firmware 12.5 %.
		p.CauseMix = []CauseWeight{
			{faults.CauseAppExit, 0.375}, {faults.CauseFilesystemBug, 0.2678},
			{faults.CauseOOM, 0.1607}, {faults.CauseKernelBug, 0.0714},
			{faults.CauseCPUStall, 0.125},
		}
		p.EpisodesPerDay = 1.3
	case "S3":
		// §III-F: hardware 37 %, software+Lustre 32 %, application 31 %,
		// with memory exhaustion at 27 % overall.
		p.CauseMix = []CauseWeight{
			{faults.CauseMCE, 0.22}, {faults.CauseCPUCorruption, 0.06},
			{faults.CauseHardwareOther, 0.09}, {faults.CauseKernelBug, 0.10},
			{faults.CauseCPUStall, 0.06}, {faults.CauseFilesystemBug, 0.15},
			{faults.CauseOOM, 0.24}, {faults.CauseAppExit, 0.06},
			{faults.CauseSegFault, 0.02},
		}
		p.BurstGapMeanMin = 4.0
	case "S4":
		p.CauseMix = []CauseWeight{
			{faults.CauseMCE, 0.12}, {faults.CauseCPUCorruption, 0.04},
			{faults.CauseHardwareOther, 0.07}, {faults.CauseKernelBug, 0.09},
			{faults.CauseCPUStall, 0.10}, {faults.CauseFilesystemBug, 0.22},
			{faults.CauseOOM, 0.14}, {faults.CauseAppExit, 0.16},
			{faults.CauseSegFault, 0.04}, {faults.CauseUnknown, 0.02},
		}
	case "S5":
		// Institutional cluster: failures are rare; the interesting
		// signal is the per-node condition mix (Fig 15).
		p.CauseMix = []CauseWeight{
			{faults.CauseOOM, 0.35}, {faults.CauseSegFault, 0.20},
			{faults.CauseFilesystemBug, 0.25}, {faults.CauseHardwareOther, 0.20},
		}
		p.EpisodesPerDay = 0.1
		p.SinglesPerDay = 0.8
		// No Cray HSS: suppress external machinery.
		p.BenignNHFPoweroffPerDay = 0
		p.BenignNHFSkippedPerDay = 0
		p.BenignNVFPerDay = 0
		p.PFailureNVF = 0
		// A 520-node institutional cluster has a far smaller benign
		// error floor than the petascale Crays; the Fig 15 condition
		// mix (genConditions) dominates the S5 internal logs.
		p.HwErrNodesPerDay = 1
		p.MCENodesPerDay = 0.5
		p.LustreIONodesPerDay = 1.5
		p.PageFaultLockNodesPerDay = 3
		p.SEDCScatterBladesPerDay = 0
		p.FloodBladeIdx = nil
		p.FloodStopIdx = -1
		p.FaultyCabinetFrac = 0
		p.FaultyBladeFrac = 0
		p.LaneEventsPerDay = 0 // Infiniband fabric is not modelled
		p.PBladeFaultNearFailure = 0
		p.PCabFaultNearFailure = 0
		// Fig 15 condition mix: hung-task 80.57 %, OOM 10.59 %, Lustre
		// 5.04 %, software 2.16 %, hardware 1.43 %.
		p.S5ConditionMix = []CauseWeight{
			{faults.CauseHungTask, 0.8057}, {faults.CauseOOM, 0.1059},
			{faults.CauseFilesystemBug, 0.0504}, {faults.CauseSegFault, 0.0216},
			{faults.CauseHardwareOther, 0.0143},
		}
	default:
		return Profile{}, fmt.Errorf("faultsim: no default profile for %q", systemID)
	}
	return p, nil
}
