package faultsim

import (
	"fmt"
	"time"

	"hpcfail/internal/alps"
	"hpcfail/internal/cname"
	"hpcfail/internal/events"
	"hpcfail/internal/faults"
	"hpcfail/internal/hss"
	"hpcfail/internal/interconnect"
	"hpcfail/internal/nhc"
	"hpcfail/internal/rng"
	"hpcfail/internal/stacktrace"
)

// generator carries the mutable generation state.
type generator struct {
	p       Profile
	scn     *Scenario
	r       *rng.Rand
	nextJob int64
	episode int
	// apids maps scheduler job ids to ALPS apids on Cray systems;
	// compute-node log lines reference the apid, and the ALPS log
	// provides the resolution (Observation 8's APID tracking).
	apids map[int64]int64
	// fabric is the HSN model (nil for non-Cray systems).
	fabric *interconnect.Fabric
}

// linkError emits an HSN lane event attributed to the blade: through
// the fabric model when available, as a bare link_error otherwise.
func (g *generator) linkError(t time.Time, blade cname.Name, pFailoverOK float64) {
	if g.fabric != nil {
		if rec, ok := g.fabric.RandomLaneEvent(t, blade, pFailoverOK, g.r); ok {
			g.add(rec)
			return
		}
	}
	g.add(hss.LinkErrorEvent(t, blade, g.r.Intn(interconnect.LanesPerLink)))
}

// apidFor returns the id compute-node logs use for a job: the ALPS apid
// on Cray systems, the job id itself elsewhere (S5 has no ALPS).
func (g *generator) apidFor(jobID int64) int64 {
	if jobID == 0 || !g.p.Spec.Cray {
		return jobID
	}
	if g.apids == nil {
		g.apids = map[int64]int64{}
	}
	if a, ok := g.apids[jobID]; ok {
		return a
	}
	a := alps.ApidBase + int64(len(g.apids)) + 1
	g.apids[jobID] = a
	return a
}

// add appends a record to the scenario. Times are truncated to
// microseconds — the resolution of the rendered log formats — so that
// text round trips are lossless.
func (g *generator) add(r events.Record) {
	r.Time = r.Time.Truncate(time.Microsecond)
	g.scn.Records = append(g.scn.Records, r)
}

// console emits an internal console-stream record.
func (g *generator) console(t time.Time, node cname.Name, typ faults.Type, sev events.Severity, msg string) events.Record {
	r := events.Record{
		Time: t, Stream: events.StreamConsole, Component: node,
		Severity: sev, Category: typ.Category(), Msg: msg,
	}
	g.add(r)
	return r
}

// oops emits a kernel oops console record carrying a synthesized call
// trace for the cause; the trace rides in the "trace" field (the text
// renderer expands it to real Call Trace lines).
func (g *generator) oops(t time.Time, node cname.Name, cause faults.Cause, jobID int64) {
	tr := stacktrace.Synthesize(cause, g.r)
	r := events.Record{
		Time: t, Stream: events.StreamConsole, Component: node,
		Severity: events.SevError, Category: faults.KernelOops.Category(),
		JobID: jobID,
		Msg:   "BUG: unable to handle kernel paging request",
	}
	r.SetField("trace", tr.Encode())
	g.add(r)
}

// shutdown emits the terminal unscheduled shutdown record.
func (g *generator) shutdown(t time.Time, node cname.Name) {
	g.console(t, node, faults.NodeShutdown, events.SevCritical,
		fmt.Sprintf("node %s halting: system shutdown", node))
}

// scheduledShutdown emits an intended (operator/service) shutdown, which
// the pipeline must exclude from anomalous failures.
func (g *generator) scheduledShutdown(t time.Time, node cname.Name) {
	r := events.Record{
		Time: t, Stream: events.StreamConsole, Component: node,
		Severity: events.SevInfo, Category: faults.NodeShutdown.Category(),
		Msg: fmt.Sprintf("node %s shutdown: scheduled by operator", node),
	}
	r.SetField("intent", "scheduled")
	g.add(r)
}

// boot emits the node return-to-service record plus the consumer-log
// state transition.
func (g *generator) boot(t time.Time, node cname.Name) {
	g.add(events.Record{
		Time: t, Stream: events.StreamConsole, Component: node,
		Severity: events.SevInfo, Category: "node_boot",
		Msg: fmt.Sprintf("node %s boot: kernel up", node),
	})
	g.nodeState(t.Add(5*time.Second), node, "up")
}

// nodeState emits a consumer-log state transition. The event consumer
// mirrors HSS state changes (up/down/admindown) into the third internal
// log family the paper consults.
func (g *generator) nodeState(t time.Time, node cname.Name, state string) {
	r := events.Record{
		Time: t, Stream: events.StreamConsumer, Component: node,
		Severity: events.SevInfo, Category: "node_state",
		Msg: fmt.Sprintf("node state transition for %s", node),
	}
	r.SetField("state", state)
	g.add(r)
}

// nhfAt emits the external heartbeat-fault pair for a dead node and
// records ground truth.
func (g *generator) nhfAt(t time.Time, node cname.Name, kind NHFKind) {
	t = t.Truncate(time.Microsecond)
	g.add(hss.NHFEvent(t, node))
	g.scn.NHFs = append(g.scn.NHFs, NHFTruth{Node: node, Time: t, Kind: kind})
	if kind == NHFFailed {
		g.add(hss.HeartbeatStopEvent(t.Add(90*time.Second), node))
	}
}

// emitFailure renders one ground-truth failure into its full log
// signature: internal precursors, the terminal event, external
// indicators, heartbeat faults, and nearby blade/cabinet health faults.
// app names the application for job-linked causes.
func (g *generator) emitFailure(f *Failure, app string) {
	lead := f.InternalLead
	tp := f.Time.Add(-lead) // first internal precursor
	node := f.Node

	// Early external indicators for fail-slow failures.
	if f.HasExternalIndicator {
		t0 := f.Time.Add(-f.ExternalLead)
		n := 2 + g.r.Intn(3)
		span := f.ExternalLead - lead
		if span <= 0 {
			span = time.Minute
		}
		for i := 0; i < n; i++ {
			at := t0.Add(time.Duration(float64(span) * float64(i) / float64(n)))
			g.add(hss.HwErrorEvent(at, node, "correctable error burst"))
		}
		if g.r.Bool(0.5) {
			// Degrading hardware shows on the fabric too — and near a
			// failure the failover is likelier to struggle.
			g.linkError(t0.Add(time.Minute), node.BladeName(), 0.5)
		}
	}

	crash := true // whether the node dies by crash (NHF path) vs admindown
	switch f.Cause {
	case faults.CauseMCE:
		for i, n := 0, 2+g.r.Intn(3); i < n; i++ {
			g.console(tp.Add(time.Duration(i)*lead/6), node, faults.CorrectableMemErr,
				events.SevWarning, "EDAC MC0: corrected memory error on DIMM")
		}
		g.console(f.Time.Add(-lead/2), node, faults.MCE, events.SevError,
			"Machine Check Exception: bank 4 status uncorrected error")
		g.oops(f.Time.Add(-15*time.Second), node, faults.CauseMCE, 0)
		g.console(f.Time.Add(-5*time.Second), node, faults.KernelPanic,
			events.SevCritical, "Kernel panic - not syncing: Fatal machine check")
		g.shutdown(f.Time, node)

	case faults.CauseCPUCorruption:
		g.console(tp, node, faults.CPUCorruption, events.SevError,
			"CPU7: processor context corrupt")
		g.console(f.Time.Add(-lead/2), node, faults.MCE, events.SevError,
			"Machine Check Exception: CPU context corrupt")
		g.oops(f.Time.Add(-20*time.Second), node, faults.CauseCPUCorruption, 0)
		g.console(f.Time.Add(-5*time.Second), node, faults.KernelPanic,
			events.SevCritical, "Kernel panic - not syncing: CPU corruption")
		g.shutdown(f.Time, node)

	case faults.CauseHardwareOther:
		typ := faults.BIOSError
		msg := "BIOS reported platform error"
		if g.r.Bool(0.5) {
			typ, msg = faults.DiskError, "blk_update_request: I/O error, dev sda"
		}
		g.console(tp, node, typ, events.SevError, msg)
		g.oops(f.Time.Add(-20*time.Second), node, faults.CauseHardwareOther, 0)
		g.console(f.Time.Add(-5*time.Second), node, faults.KernelPanic,
			events.SevCritical, "Kernel panic - not syncing: hardware error")
		g.shutdown(f.Time, node)

	case faults.CauseKernelBug:
		g.console(tp, node, faults.KernelBug, events.SevError,
			"kernel BUG: invalid opcode: 0000 [#1] SMP")
		g.oops(f.Time.Add(-30*time.Second), node, faults.CauseKernelBug, 0)
		g.console(f.Time.Add(-5*time.Second), node, faults.KernelPanic,
			events.SevCritical, "Kernel panic - not syncing: Fatal exception")
		g.shutdown(f.Time, node)

	case faults.CauseCPUStall:
		for i := 0; i < 2; i++ {
			g.console(tp.Add(time.Duration(i)*lead/3), node, faults.CPUStall,
				events.SevError, "INFO: rcu_sched self-detected stall on CPU")
		}
		if g.r.Bool(0.4) {
			g.console(f.Time.Add(-lead/3), node, faults.FirmwareBug,
				events.SevError, "firmware: watchdog handshake lost")
		}
		g.oops(f.Time.Add(-20*time.Second), node, faults.CauseCPUStall, 0)
		g.shutdown(f.Time, node)

	case faults.CauseFilesystemBug:
		// Roughly half of filesystem bugs announce themselves with
		// LustreError/DVS messages; the rest manifest directly as a
		// kernel oops whose ONLY cause evidence is the stack trace's
		// filesystem modules — the paper's Table IV analysis is what
		// recovers those.
		if g.r.Bool(0.55) {
			g.console(tp, node, faults.LustreBug, events.SevError,
				"LustreError: 11-0: lock callback timer expired, evicting client")
			if g.r.Bool(0.4) {
				g.console(tp.Add(lead/4), node, faults.DVSError, events.SevError,
					"DVS: file system request hang detected")
			}
		}
		g.oops(f.Time.Add(-30*time.Second), node, faults.CauseFilesystemBug, g.apidFor(f.JobID))
		g.console(f.Time.Add(-5*time.Second), node, faults.KernelPanic,
			events.SevCritical, "Kernel panic - not syncing: LBUG")
		g.shutdown(f.Time, node)

	case faults.CauseOOM:
		crash = false
		g.console(tp, node, faults.PageAllocFailure, events.SevWarning,
			fmt.Sprintf("%s: page allocation failure: order:4", app))
		r := g.console(f.Time.Add(-lead/2), node, faults.OOMKiller, events.SevError,
			fmt.Sprintf("Out of memory: Kill process (%s) score 987", app))
		_ = r
		g.oops(f.Time.Add(-lead/3), node, faults.CauseOOM, g.apidFor(f.JobID))
		g.add(nhc.SuspectEvent(f.Time.Add(-time.Minute), node))
		g.add(nhc.TestFailEvent(f.Time.Add(-30*time.Second), node, nhc.TestMemory))
		g.add(nhc.AdminDownEvent(f.Time, node, g.apidFor(f.JobID)))

	case faults.CauseAppExit:
		crash = false
		g.add(nhc.AppExitEvent(tp, node, g.apidFor(f.JobID), app))
		g.add(nhc.SuspectEvent(tp.Add(30*time.Second), node))
		g.add(nhc.TestFailEvent(f.Time.Add(-30*time.Second), node, nhc.TestAppExit))
		g.add(nhc.AdminDownEvent(f.Time, node, g.apidFor(f.JobID)))

	case faults.CauseSegFault:
		g.console(tp, node, faults.SegFault, events.SevError,
			fmt.Sprintf("%s[%d]: segfault at 0 ip 00000000 sp 00000000 error 4",
				app, 10000+g.r.Intn(50000)))
		g.console(tp.Add(lead/3), node, faults.PageAllocFailure, events.SevWarning,
			fmt.Sprintf("%s: page allocation failure: order:2", app))
		g.oops(f.Time.Add(-20*time.Second), node, faults.CauseSegFault, g.apidFor(f.JobID))
		g.shutdown(f.Time, node)

	case faults.CauseUnknown:
		switch g.r.Intn(3) {
		case 0: // opaque BIOS class pattern
			g.console(tp, node, faults.BIOSClassError, events.SevWarning,
				"type:2; severity:80; class:3; subclass:D; operation:2")
			g.shutdown(f.Time, node)
		case 1: // blade-controller MCE pattern, external only
			g.add(events.Record{
				Time: tp, Stream: events.StreamERD, Component: node,
				Severity: events.SevError, Category: faults.L0SysdMCE.Category(),
				Msg: "L0_sysd_mce: memory error reported by blade controller",
			})
			g.shutdown(f.Time, node)
		default: // silent shutdown
			g.console(f.Time, node, faults.SilentShutdown, events.SevCritical,
				fmt.Sprintf("node %s halting: no prior symptoms", node))
		}

	default:
		// Defensive: unknown causes die silently.
		g.shutdown(f.Time, node)
	}

	// Crash deaths stop heartbeats; admindown nodes keep beating. The
	// consumer log mirrors the resulting state transition either way.
	if crash {
		g.nhfAt(f.Time.Add(time.Duration(20+g.r.Intn(40))*time.Second), node, NHFFailed)
		g.nodeState(f.Time.Add(2*time.Minute), node, "down")
	} else {
		g.nodeState(f.Time.Add(30*time.Second), node, "admindown")
	}
	// Occasional NVF on hardware failures (Fig 5's strongly-predictive
	// voltage faults).
	if f.Cause.Class() == faults.ClassHardware && g.r.Bool(g.p.PFailureNVF) {
		at := f.Time.Add(-time.Duration(1+g.r.Intn(4)) * time.Minute)
		g.add(hss.NVFEvent(at, node, "VDD", 0.80+0.05*g.r.Float64()))
		g.scn.NVFs = append(g.scn.NVFs, NVFTruth{Node: node, Time: at, Failed: true})
	}
	// Weakly-correlated blade/cabinet health faults (Fig 7).
	if g.r.Bool(g.p.PBladeFaultNearFailure) {
		at := f.Time.Add(time.Duration(g.r.Intn(600)-300) * time.Second)
		typs := []faults.Type{faults.BCHF, faults.ModuleHealthFault, faults.SensorReadFailed}
		g.add(hss.HealthFaultEvent(at, node.BladeName(), typs[g.r.Intn(len(typs))]))
	}
	if g.r.Bool(g.p.PCabFaultNearFailure) {
		at := f.Time.Add(time.Duration(g.r.Intn(900)-450) * time.Second)
		typs := []faults.Type{faults.CabinetPowerFault, faults.CabinetSensorCheck, faults.CommFault}
		g.add(hss.HealthFaultEvent(at, node.CabinetName(), typs[g.r.Intn(len(typs))]))
	}
	// The node reboots 20–90 minutes later.
	g.boot(f.Time.Add(time.Duration(20+g.r.Intn(70))*time.Minute), node)
}

// emitNearMiss renders a healthy node's failure-like internal sequence
// that never terminates in a failure.
func (g *generator) emitNearMiss(t time.Time, node cname.Name, hasExternal bool) {
	// Each near miss pairs two distinct indicative categories — the
	// multi-signal internal patterns a prediction scheme alarms on.
	switch g.r.Intn(3) {
	case 0:
		g.console(t, node, faults.CorrectableMemErr, events.SevWarning,
			"EDAC MC0: corrected memory error on DIMM")
		g.console(t.Add(2*time.Minute), node, faults.MCE, events.SevError,
			"Machine Check Exception: bank 2 corrected error threshold")
	case 1:
		g.console(t, node, faults.LustreBug, events.SevError,
			"LustreError: 11-0: lock callback timer expired (recovered)")
		g.console(t.Add(time.Minute), node, faults.DVSError, events.SevError,
			"DVS: file system request hang detected (recovered)")
	default:
		g.console(t, node, faults.KernelBug, events.SevError,
			"kernel BUG: soft lockup recovered")
		g.console(t.Add(time.Minute), node, faults.CPUStall, events.SevError,
			"INFO: rcu_sched self-detected stall on CPU (recovered)")
	}
	if hasExternal {
		g.add(hss.HwErrorEvent(t.Add(-3*time.Minute), node, "transient sensor burst"))
	}
	g.scn.NearMisses = append(g.scn.NearMisses, NearMiss{Node: node, Time: t, HasExternal: hasExternal})
}
