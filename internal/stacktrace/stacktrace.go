// Package stacktrace models kernel oops call traces: synthesis of
// realistic traces for the simulator, text rendering/parsing in the
// kernel's "Call Trace:" format, and classification of a trace back to
// its originating layer.
//
// The paper's §III-F analysis examines "the beginning of the stack
// traces" and the kernel modules they name (Table IV: sleep_on_page,
// ldlm_bl, dvs_ipc_mesg, mce_log, rwsem_down_failed, ...) to decide
// whether a failure that manifests inside the OS actually originated in
// the application or the file system. Classify implements that module-
// signature analysis; the diagnosis pipeline relies on it to attribute
// application-triggered failures.
package stacktrace

import (
	"fmt"
	"strconv"
	"strings"

	"hpcfail/internal/faults"
	"hpcfail/internal/rng"
)

// Frame is one call-trace entry.
type Frame struct {
	// Addr is the (synthetic) kernel text address.
	Addr uint64
	// Function is the symbol name.
	Function string
	// Offset and Size position the address within the symbol.
	Offset, Size uint32
	// Module is the owning kernel module; empty for core kernel symbols.
	Module string
}

// Render produces the kernel log form, e.g.
//
//	[<ffffffff810a1b2c>] dvs_ipc_mesg+0x12c/0x340 [dvsipc]
func (f Frame) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, " [<%016x>] %s+0x%x/0x%x", f.Addr, f.Function, f.Offset, f.Size)
	if f.Module != "" {
		fmt.Fprintf(&b, " [%s]", f.Module)
	}
	return b.String()
}

// ParseFrame parses a rendered frame line. The boolean is false for
// lines that are not call-trace frames.
func ParseFrame(line string) (Frame, bool) {
	s := strings.TrimSpace(line)
	if !strings.HasPrefix(s, "[<") {
		return Frame{}, false
	}
	end := strings.Index(s, ">]")
	if end < 0 {
		return Frame{}, false
	}
	addr, err := strconv.ParseUint(s[2:end], 16, 64)
	if err != nil {
		return Frame{}, false
	}
	rest := strings.TrimSpace(s[end+2:])
	var module string
	if i := strings.LastIndex(rest, " ["); i >= 0 && strings.HasSuffix(rest, "]") {
		module = rest[i+2 : len(rest)-1]
		rest = rest[:i]
	}
	plus := strings.LastIndexByte(rest, '+')
	if plus < 0 {
		return Frame{}, false
	}
	fn := rest[:plus]
	offs := rest[plus+1:]
	slash := strings.IndexByte(offs, '/')
	if slash < 0 || !strings.HasPrefix(offs, "0x") || !strings.HasPrefix(offs[slash+1:], "0x") {
		return Frame{}, false
	}
	off, err1 := strconv.ParseUint(offs[2:slash], 16, 32)
	size, err2 := strconv.ParseUint(offs[slash+3:], 16, 32)
	if err1 != nil || err2 != nil || fn == "" {
		return Frame{}, false
	}
	return Frame{Addr: addr, Function: fn, Offset: uint32(off), Size: uint32(size), Module: module}, true
}

// Trace is an ordered call trace, innermost frame first (as the kernel
// prints it).
type Trace struct {
	Frames []Frame
}

// Render produces the kernel log lines including the "Call Trace:"
// header.
func (t Trace) Render() []string {
	out := make([]string, 0, len(t.Frames)+1)
	out = append(out, "Call Trace:")
	for _, f := range t.Frames {
		out = append(out, f.Render())
	}
	return out
}

// Functions returns the symbol names in order.
func (t Trace) Functions() []string {
	out := make([]string, len(t.Frames))
	for i, f := range t.Frames {
		out[i] = f.Function
	}
	return out
}

// Encode packs the trace into a single-line field value
// ("fn1@mod1|fn2|fn3@mod3") so it can travel inside a structured log
// field; Decode inverts it. Offsets are not preserved — classification
// needs only symbols and modules.
func (t Trace) Encode() string {
	parts := make([]string, len(t.Frames))
	for i, f := range t.Frames {
		if f.Module != "" {
			parts[i] = f.Function + "@" + f.Module
		} else {
			parts[i] = f.Function
		}
	}
	return strings.Join(parts, "|")
}

// Decode parses an Encode'd trace.
func Decode(s string) Trace {
	if s == "" {
		return Trace{}
	}
	parts := strings.Split(s, "|")
	fr := make([]Frame, 0, len(parts))
	for _, p := range parts {
		fn, mod := p, ""
		if i := strings.IndexByte(p, '@'); i >= 0 {
			fn, mod = p[:i], p[i+1:]
		}
		if fn == "" {
			continue
		}
		fr = append(fr, Frame{Function: fn, Module: mod})
	}
	return Trace{Frames: fr}
}

// signature describes the trace recipe for one root cause: the leading
// (diagnostic) symbols the paper's analysis keys on, and filler symbols
// for depth.
type signature struct {
	lead   []Frame // innermost diagnostic frames, in order
	filler []Frame // generic scheduler/syscall frames appended below
}

// fr is a terse Frame constructor for the corpus tables.
func fr(fn, mod string) Frame { return Frame{Function: fn, Module: mod} }

// commonTail frames appear at the bottom of nearly every kernel trace.
var commonTail = []Frame{
	fr("system_call_fastpath", ""),
	fr("do_syscall_64", ""),
	fr("entry_SYSCALL_64_after_hwframe", ""),
}

// signatures maps each cause to its trace recipe. The lead frames encode
// Table IV: mce_log for MCEs, dvs_ipc_msg/ldlm_bl/sleep_on_page for
// file-system and job-triggered failures, rwsem_down_failed for
// concurrency hangs, oom killer symbols for memory exhaustion.
var signatures = map[faults.Cause]signature{
	faults.CauseMCE: {
		lead:   []Frame{fr("mce_log", ""), fr("do_machine_check", ""), fr("mce_panic", "")},
		filler: []Frame{fr("machine_check", ""), fr("mce_timer_fn", "")},
	},
	faults.CauseCPUCorruption: {
		lead:   []Frame{fr("do_general_protection", ""), fr("fixup_exception", ""), fr("native_smp_send_stop", "")},
		filler: []Frame{fr("panic", ""), fr("smp_call_function", "")},
	},
	faults.CauseHardwareOther: {
		lead:   []Frame{fr("ghes_do_proc", ""), fr("ghes_proc", ""), fr("acpi_hed_notify", "")},
		filler: []Frame{fr("nmi_handle", ""), fr("default_do_nmi", "")},
	},
	faults.CauseKernelBug: {
		lead:   []Frame{fr("invalid_op", ""), fr("do_invalid_op", ""), fr("die", "")},
		filler: []Frame{fr("exception_exit", ""), fr("error_entry", "")},
	},
	faults.CauseCPUStall: {
		lead:   []Frame{fr("rcu_check_callbacks", ""), fr("rcu_sched_clock_irq", ""), fr("watchdog_timer_fn", "")},
		filler: []Frame{fr("update_process_times", ""), fr("tick_sched_timer", "")},
	},
	faults.CauseFilesystemBug: {
		lead: []Frame{fr("ldlm_bl_thread_main", "lustre"), fr("dvs_ipc_mesg", "dvsipc"),
			fr("ptlrpc_main", "ptlrpc"), fr("cl_lock_enqueue_wait", "obdclass")},
		filler: []Frame{fr("rwsem_down_failed_common", ""), fr("kthread", "")},
	},
	faults.CauseOOM: {
		lead: []Frame{fr("oom_kill_process", ""), fr("out_of_memory", ""),
			fr("__alloc_pages_slowpath", ""), fr("xpmem_fault_handler", "xpmem")},
		filler: []Frame{fr("__alloc_pages_nodemask", ""), fr("handle_mm_fault", "")},
	},
	faults.CauseAppExit: {
		lead:   []Frame{fr("do_exit", ""), fr("do_group_exit", ""), fr("get_signal", "")},
		filler: []Frame{fr("do_signal", ""), fr("exit_to_usermode_loop", "")},
	},
	faults.CauseSegFault: {
		lead:   []Frame{fr("__do_page_fault", ""), fr("bad_area_nosemaphore", ""), fr("force_sig_info", "")},
		filler: []Frame{fr("page_fault", ""), fr("do_page_fault", "")},
	},
	faults.CauseHungTask: {
		lead: []Frame{fr("sleep_on_page", ""), fr("io_schedule", ""),
			fr("wait_on_page_bit", ""), fr("rwsem_down_failed_common", "")},
		filler: []Frame{fr("schedule", ""), fr("schedule_timeout", "")},
	},
	faults.CauseUnknown: {
		lead:   []Frame{fr("do_IRQ", ""), fr("irq_exit", "")},
		filler: []Frame{fr("common_interrupt", ""), fr("ret_from_intr", "")},
	},
}

// Synthesize generates a realistic trace for the given cause. The lead
// diagnostic frames always appear (innermost first); filler and tail
// frames pad the trace to a plausible depth with randomised addresses.
func Synthesize(cause faults.Cause, r *rng.Rand) Trace {
	sig, ok := signatures[cause]
	if !ok {
		sig = signatures[faults.CauseUnknown]
	}
	frames := make([]Frame, 0, len(sig.lead)+len(sig.filler)+len(commonTail))
	frames = append(frames, sig.lead...)
	// Shuffle a subset of filler in for variety.
	for _, f := range sig.filler {
		if r.Bool(0.8) {
			frames = append(frames, f)
		}
	}
	frames = append(frames, commonTail[:1+r.Intn(len(commonTail))]...)
	for i := range frames {
		frames[i].Addr = 0xffffffff81000000 + r.Uint64()%0x7fffff
		frames[i].Size = 0x100 + uint32(r.Intn(0x500))
		frames[i].Offset = uint32(r.Intn(int(frames[i].Size)))
	}
	return Trace{Frames: frames}
}

// Classification is the outcome of module-signature analysis on a trace.
type Classification struct {
	// Cause is the inferred root-cause bucket.
	Cause faults.Cause
	// Origin is the inferred originating layer; for application-
	// triggered file-system failures this is ClassApplication even
	// though the trace names filesystem modules (the paper's key
	// distinction).
	Origin faults.Class
	// KeySymbol is the diagnostic symbol that decided the
	// classification.
	KeySymbol string
	// Confidence is a heuristic weight in (0, 1]: 1.0 for an exact lead-
	// frame match near the top of the trace, lower for deeper matches.
	Confidence float64
}

// classRule maps a diagnostic symbol to its classification. Order
// matters: the first rule whose symbol appears earliest in the trace
// wins, mirroring the paper's focus on "the beginning of the stack
// traces".
var classRules = []struct {
	symbol string
	cause  faults.Cause
	origin faults.Class
}{
	{"mce_log", faults.CauseMCE, faults.ClassHardware},
	{"do_machine_check", faults.CauseMCE, faults.ClassHardware},
	{"do_general_protection", faults.CauseCPUCorruption, faults.ClassHardware},
	{"ghes_do_proc", faults.CauseHardwareOther, faults.ClassHardware},
	{"oom_kill_process", faults.CauseOOM, faults.ClassApplication},
	{"out_of_memory", faults.CauseOOM, faults.ClassApplication},
	{"xpmem_fault_handler", faults.CauseOOM, faults.ClassApplication},
	{"ldlm_bl_thread_main", faults.CauseFilesystemBug, faults.ClassApplication},
	{"dvs_ipc_mesg", faults.CauseFilesystemBug, faults.ClassApplication},
	{"ptlrpc_main", faults.CauseFilesystemBug, faults.ClassFilesystem},
	{"cl_lock_enqueue_wait", faults.CauseFilesystemBug, faults.ClassFilesystem},
	{"sleep_on_page", faults.CauseHungTask, faults.ClassSoftware},
	{"io_schedule", faults.CauseHungTask, faults.ClassSoftware},
	{"rwsem_down_failed_common", faults.CauseHungTask, faults.ClassSoftware},
	{"invalid_op", faults.CauseKernelBug, faults.ClassSoftware},
	{"do_invalid_op", faults.CauseKernelBug, faults.ClassSoftware},
	{"rcu_check_callbacks", faults.CauseCPUStall, faults.ClassSoftware},
	{"watchdog_timer_fn", faults.CauseCPUStall, faults.ClassSoftware},
	{"__do_page_fault", faults.CauseSegFault, faults.ClassApplication},
	{"bad_area_nosemaphore", faults.CauseSegFault, faults.ClassApplication},
	{"do_exit", faults.CauseAppExit, faults.ClassApplication},
	{"do_group_exit", faults.CauseAppExit, faults.ClassApplication},
}

// Classify infers the root-cause bucket of a trace from its diagnostic
// symbols. An empty or unrecognised trace classifies as CauseUnknown
// with zero confidence.
func Classify(t Trace) Classification {
	bestIdx := len(t.Frames)
	var best Classification
	for _, rule := range classRules {
		for i, f := range t.Frames {
			if f.Function != rule.symbol {
				continue
			}
			if i < bestIdx {
				bestIdx = i
				conf := 1.0 - float64(i)/float64(len(t.Frames)+1)
				best = Classification{
					Cause: rule.cause, Origin: rule.origin,
					KeySymbol: rule.symbol, Confidence: conf,
				}
			}
			break
		}
	}
	if best.KeySymbol == "" {
		return Classification{Cause: faults.CauseUnknown, Origin: faults.ClassUnknown}
	}
	return best
}

// ParseTrace extracts the trace from consecutive rendered lines starting
// after a "Call Trace:" header. It stops at the first non-frame line and
// returns the trace together with the number of lines consumed
// (including the header).
func ParseTrace(lines []string) (Trace, int) {
	if len(lines) == 0 || !strings.Contains(lines[0], "Call Trace:") {
		return Trace{}, 0
	}
	var t Trace
	n := 1
	for n < len(lines) {
		f, ok := ParseFrame(lines[n])
		if !ok {
			break
		}
		t.Frames = append(t.Frames, f)
		n++
	}
	return t, n
}
