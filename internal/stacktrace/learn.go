package stacktrace

import (
	"math"
	"sort"

	"hpcfail/internal/faults"
)

// The paper's Table VI recommends "a machine learning guided study of
// call traces ... to narrow down the buggy code or function emanating
// from the application or file system". This file implements that
// study's baseline model: a multinomial naive-Bayes classifier over
// trace symbols. Unlike the hand-written rule table (Classify), the
// learned model degrades gracefully when the diagnostic lead frames are
// missing from a truncated trace, because it also absorbs the
// distributional signal of the filler frames.

// Example is one labelled trace.
type Example struct {
	Trace Trace
	Cause faults.Cause
}

// NaiveBayes is a multinomial naive-Bayes model over trace symbols
// (function names, plus module-qualified forms).
type NaiveBayes struct {
	classCount map[faults.Cause]int
	symCount   map[faults.Cause]map[string]int
	symTotal   map[faults.Cause]int
	vocab      map[string]struct{}
	total      int
}

// features extracts the symbol tokens of a trace.
func features(t Trace) []string {
	out := make([]string, 0, 2*len(t.Frames))
	for _, f := range t.Frames {
		out = append(out, f.Function)
		if f.Module != "" {
			out = append(out, f.Function+"@"+f.Module)
		}
	}
	return out
}

// Train fits the model on labelled traces. Empty input yields a model
// that always predicts CauseUnknown.
func Train(examples []Example) *NaiveBayes {
	nb := &NaiveBayes{
		classCount: map[faults.Cause]int{},
		symCount:   map[faults.Cause]map[string]int{},
		symTotal:   map[faults.Cause]int{},
		vocab:      map[string]struct{}{},
	}
	for _, ex := range examples {
		nb.classCount[ex.Cause]++
		nb.total++
		if nb.symCount[ex.Cause] == nil {
			nb.symCount[ex.Cause] = map[string]int{}
		}
		for _, s := range features(ex.Trace) {
			nb.symCount[ex.Cause][s]++
			nb.symTotal[ex.Cause]++
			nb.vocab[s] = struct{}{}
		}
	}
	return nb
}

// Classes returns the trained classes in a stable order.
func (nb *NaiveBayes) Classes() []faults.Cause {
	out := make([]faults.Cause, 0, len(nb.classCount))
	for c := range nb.classCount {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Predict returns the most probable cause for a trace and its
// posterior probability. An empty trace or untrained model predicts
// CauseUnknown with zero confidence.
func (nb *NaiveBayes) Predict(t Trace) (faults.Cause, float64) {
	if nb.total == 0 || len(t.Frames) == 0 {
		return faults.CauseUnknown, 0
	}
	feats := features(t)
	v := float64(len(nb.vocab) + 1)
	classes := nb.Classes()
	logs := make([]float64, len(classes))
	for i, c := range classes {
		// Log prior with Laplace smoothing.
		lp := math.Log(float64(nb.classCount[c]+1) / float64(nb.total+len(classes)))
		denom := float64(nb.symTotal[c]) + v
		for _, s := range feats {
			lp += math.Log((float64(nb.symCount[c][s]) + 1) / denom)
		}
		logs[i] = lp
	}
	// Softmax for the posterior of the argmax.
	maxLog := logs[0]
	best := 0
	for i, l := range logs {
		if l > maxLog {
			maxLog, best = l, i
		}
	}
	var z float64
	for _, l := range logs {
		z += math.Exp(l - maxLog)
	}
	return classes[best], 1 / z
}

// Truncate returns a copy of the trace with its first n (innermost)
// frames removed — modelling partially captured console dumps, the
// regime where rule-based classification loses its diagnostic lead
// frames.
func Truncate(t Trace, n int) Trace {
	if n <= 0 {
		return t
	}
	if n >= len(t.Frames) {
		return Trace{}
	}
	out := Trace{Frames: make([]Frame, len(t.Frames)-n)}
	copy(out.Frames, t.Frames[n:])
	return out
}
