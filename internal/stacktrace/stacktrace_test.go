package stacktrace

import (
	"strings"
	"testing"
	"testing/quick"

	"hpcfail/internal/faults"
	"hpcfail/internal/rng"
)

func TestFrameRenderParseRoundTrip(t *testing.T) {
	f := Frame{Addr: 0xffffffff810a1b2c, Function: "dvs_ipc_mesg", Offset: 0x12c, Size: 0x340, Module: "dvsipc"}
	line := f.Render()
	if !strings.Contains(line, "dvs_ipc_mesg+0x12c/0x340 [dvsipc]") {
		t.Fatalf("Render = %q", line)
	}
	back, ok := ParseFrame(line)
	if !ok || back != f {
		t.Fatalf("ParseFrame(%q) = %+v, %v", line, back, ok)
	}
	// Core-kernel symbol without module.
	g := Frame{Addr: 1, Function: "schedule", Offset: 0, Size: 0x10}
	back2, ok := ParseFrame(g.Render())
	if !ok || back2 != g {
		t.Fatalf("round trip without module failed: %+v", back2)
	}
}

func TestParseFrameRejectsGarbage(t *testing.T) {
	bad := []string{
		"", "hello", "[<zzzz>] fn+0x1/0x2", "[<12>] noplus",
		"[<12>] fn+1/2", "[<12>] fn+0x1:0x2", "[<12",
		"[<12>] +0x1/0x2",
	}
	for _, s := range bad {
		if _, ok := ParseFrame(s); ok {
			t.Errorf("ParseFrame(%q) accepted garbage", s)
		}
	}
}

func TestSynthesizeHasLeadFrames(t *testing.T) {
	r := rng.New(1)
	tr := Synthesize(faults.CauseOOM, r)
	fns := strings.Join(tr.Functions(), " ")
	if !strings.Contains(fns, "oom_kill_process") || !strings.Contains(fns, "out_of_memory") {
		t.Errorf("OOM trace missing diagnostic frames: %v", fns)
	}
	if len(tr.Frames) < 4 {
		t.Errorf("trace too shallow: %d frames", len(tr.Frames))
	}
	for _, f := range tr.Frames {
		if f.Addr == 0 || f.Size == 0 || f.Offset >= f.Size {
			t.Errorf("implausible frame %+v", f)
		}
	}
}

func TestSynthesizeUnknownCauseFallsBack(t *testing.T) {
	tr := Synthesize(faults.Cause(99), rng.New(1))
	if len(tr.Frames) == 0 {
		t.Fatal("fallback trace empty")
	}
}

func TestClassifyRoundTripAllCauses(t *testing.T) {
	// Synthesize→Classify must recover the cause for every cause with a
	// distinctive signature (CauseUnknown legitimately classifies as
	// unknown).
	r := rng.New(7)
	for _, c := range faults.AllCauses() {
		for trial := 0; trial < 20; trial++ {
			tr := Synthesize(c, r)
			got := Classify(tr)
			want := c
			if c == faults.CauseUnknown {
				if got.Cause != faults.CauseUnknown {
					t.Errorf("unknown trace classified as %v", got.Cause)
				}
				continue
			}
			if got.Cause != want {
				t.Errorf("cause %v classified as %v (trace %v)", c, got.Cause, tr.Functions())
			}
			if got.Confidence <= 0 || got.Confidence > 1 {
				t.Errorf("confidence out of range: %v", got.Confidence)
			}
		}
	}
}

func TestClassifyTableIVApplicationOrigin(t *testing.T) {
	// Table IV / Observation 7: dvs_ipc_mesg and ldlm_bl traces indicate
	// application-triggered file-system failures.
	tr := Trace{Frames: []Frame{fr("ldlm_bl_thread_main", "lustre"), fr("kthread", "")}}
	got := Classify(tr)
	if got.Cause != faults.CauseFilesystemBug || got.Origin != faults.ClassApplication {
		t.Errorf("ldlm_bl trace: %+v", got)
	}
	tr2 := Trace{Frames: []Frame{fr("mce_log", ""), fr("panic", "")}}
	got2 := Classify(tr2)
	if got2.Cause != faults.CauseMCE || got2.Origin != faults.ClassHardware {
		t.Errorf("mce trace: %+v", got2)
	}
}

func TestClassifyPrefersEarliestFrame(t *testing.T) {
	// An OOM symbol above a filesystem symbol should win (innermost
	// frame decides, per the paper's "beginning of the stack traces").
	tr := Trace{Frames: []Frame{
		fr("oom_kill_process", ""),
		fr("dvs_ipc_mesg", "dvsipc"),
	}}
	got := Classify(tr)
	if got.Cause != faults.CauseOOM {
		t.Errorf("expected OOM to win, got %v", got.Cause)
	}
}

func TestClassifyEmptyTrace(t *testing.T) {
	got := Classify(Trace{})
	if got.Cause != faults.CauseUnknown || got.Confidence != 0 {
		t.Errorf("empty trace: %+v", got)
	}
}

func TestRenderParseTraceRoundTrip(t *testing.T) {
	r := rng.New(3)
	tr := Synthesize(faults.CauseFilesystemBug, r)
	lines := tr.Render()
	if lines[0] != "Call Trace:" {
		t.Fatalf("missing header: %q", lines[0])
	}
	back, n := ParseTrace(lines)
	if n != len(lines) {
		t.Fatalf("consumed %d of %d lines", n, len(lines))
	}
	if len(back.Frames) != len(tr.Frames) {
		t.Fatalf("frame count %d != %d", len(back.Frames), len(tr.Frames))
	}
	for i := range back.Frames {
		if back.Frames[i] != tr.Frames[i] {
			t.Errorf("frame %d: %+v != %+v", i, back.Frames[i], tr.Frames[i])
		}
	}
}

func TestParseTraceStopsAtNonFrame(t *testing.T) {
	lines := []string{
		"Call Trace:",
		Frame{Addr: 1, Function: "a", Size: 2}.Render(),
		"some other log line",
	}
	tr, n := ParseTrace(lines)
	if n != 2 || len(tr.Frames) != 1 {
		t.Errorf("n=%d frames=%d", n, len(tr.Frames))
	}
	if _, n := ParseTrace([]string{"no header"}); n != 0 {
		t.Error("ParseTrace should not consume without header")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := Trace{Frames: []Frame{
		fr("oom_kill_process", ""),
		fr("xpmem_fault_handler", "xpmem"),
	}}
	enc := tr.Encode()
	if enc != "oom_kill_process|xpmem_fault_handler@xpmem" {
		t.Fatalf("Encode = %q", enc)
	}
	back := Decode(enc)
	if len(back.Frames) != 2 || back.Frames[1].Module != "xpmem" {
		t.Fatalf("Decode = %+v", back)
	}
	if len(Decode("").Frames) != 0 {
		t.Error("Decode of empty should be empty")
	}
}

// Property: Encode/Decode preserves classification for synthesized
// traces of any cause.
func TestQuickEncodePreservesClassification(t *testing.T) {
	f := func(seed uint64, rawCause uint8) bool {
		c := faults.AllCauses()[int(rawCause)%len(faults.AllCauses())]
		tr := Synthesize(c, rng.New(seed))
		a := Classify(tr)
		b := Classify(Decode(tr.Encode()))
		return a.Cause == b.Cause && a.Origin == b.Origin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: every rendered frame line re-parses.
func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(addr uint64, off, size uint16) bool {
		if size == 0 {
			size = 1
		}
		fm := Frame{Addr: addr, Function: "sym_x", Offset: uint32(off), Size: uint32(size), Module: "m"}
		back, ok := ParseFrame(fm.Render())
		return ok && back == fm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
