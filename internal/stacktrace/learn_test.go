package stacktrace

import (
	"testing"

	"hpcfail/internal/faults"
	"hpcfail/internal/rng"
)

// trainedCauses are the causes with distinctive signatures.
func trainedCauses() []faults.Cause {
	var out []faults.Cause
	for _, c := range faults.AllCauses() {
		if c != faults.CauseUnknown {
			out = append(out, c)
		}
	}
	return out
}

func trainingSet(seed uint64, perCause int) []Example {
	r := rng.New(seed)
	var out []Example
	for _, c := range trainedCauses() {
		for i := 0; i < perCause; i++ {
			out = append(out, Example{Trace: Synthesize(c, r), Cause: c})
		}
	}
	return out
}

func TestNaiveBayesLearnsAllCauses(t *testing.T) {
	nb := Train(trainingSet(1, 30))
	r := rng.New(99)
	for _, c := range trainedCauses() {
		hits := 0
		const trials = 25
		for i := 0; i < trials; i++ {
			got, conf := nb.Predict(Synthesize(c, r))
			if got == c {
				hits++
			}
			if conf < 0 || conf > 1 {
				t.Fatalf("posterior out of range: %v", conf)
			}
		}
		if hits < trials*9/10 {
			t.Errorf("cause %v: NB accuracy %d/%d", c, hits, trials)
		}
	}
}

func TestNaiveBayesEmptyInputs(t *testing.T) {
	nb := Train(nil)
	if c, conf := nb.Predict(Trace{Frames: []Frame{fr("x", "")}}); c != faults.CauseUnknown || conf != 0 {
		t.Errorf("untrained predict = %v %v", c, conf)
	}
	nb = Train(trainingSet(1, 5))
	if c, conf := nb.Predict(Trace{}); c != faults.CauseUnknown || conf != 0 {
		t.Errorf("empty trace predict = %v %v", c, conf)
	}
	if len(nb.Classes()) != len(trainedCauses()) {
		t.Errorf("classes = %v", nb.Classes())
	}
}

func TestTruncate(t *testing.T) {
	tr := Trace{Frames: []Frame{fr("a", ""), fr("b", ""), fr("c", "")}}
	if got := Truncate(tr, 0); len(got.Frames) != 3 {
		t.Error("truncate 0 should be identity")
	}
	if got := Truncate(tr, 2); len(got.Frames) != 1 || got.Frames[0].Function != "c" {
		t.Errorf("truncate 2 = %v", got.Functions())
	}
	if got := Truncate(tr, 5); len(got.Frames) != 0 {
		t.Error("over-truncation should empty the trace")
	}
	// Original untouched.
	if len(tr.Frames) != 3 {
		t.Error("Truncate mutated its input")
	}
}

// TestNBBeatsRulesOnTruncatedTraces demonstrates the Table VI claim:
// the learned model keeps classifying when the diagnostic lead frames
// are gone, where the rule table cannot.
func TestNBBeatsRulesOnTruncatedTraces(t *testing.T) {
	nb := Train(trainingSet(7, 40))
	r := rng.New(123)
	const drop = 3 // remove the innermost (diagnostic) frames
	var nbHits, ruleHits, total int
	for _, c := range trainedCauses() {
		for i := 0; i < 30; i++ {
			tr := Truncate(Synthesize(c, r), drop)
			if len(tr.Frames) == 0 {
				continue
			}
			total++
			if got, _ := nb.Predict(tr); got == c {
				nbHits++
			}
			if got := Classify(tr); got.Cause == c {
				ruleHits++
			}
		}
	}
	if total == 0 {
		t.Fatal("no truncated traces to score")
	}
	nbAcc := float64(nbHits) / float64(total)
	ruleAcc := float64(ruleHits) / float64(total)
	if nbAcc <= ruleAcc {
		t.Errorf("NB accuracy %.2f should beat rules %.2f on truncated traces", nbAcc, ruleAcc)
	}
	if nbAcc < 0.5 {
		t.Errorf("NB accuracy %.2f too low on truncated traces", nbAcc)
	}
}

func BenchmarkNBTrain(b *testing.B) {
	set := trainingSet(1, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(set)
	}
}

func BenchmarkNBPredict(b *testing.B) {
	nb := Train(trainingSet(1, 30))
	tr := Synthesize(faults.CauseFilesystemBug, rng.New(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb.Predict(tr)
	}
}
