package server

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// TestConcurrentQueriesAndIngest hammers the cache/singleflight path
// with identical concurrent queries racing live ingestion — the test CI
// runs under -race to prove the watermark/snapshot/cache machinery is
// data-race free. Every response must be a complete 200 at a coherent
// watermark.
func TestConcurrentQueriesAndIngest(t *testing.T) {
	s := seedServer(t, fixtureClean, Config{MaxInflight: 64})
	h := s.Handler()

	const (
		queriers   = 8
		queries    = 12
		ingestions = 10
	)
	var wg sync.WaitGroup
	errs := make(chan error, queriers*queries+ingestions)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ingestions; i++ {
			line := fmt.Sprintf(
				"2015-03-03T00:%02d:00.000000Z c0-0c0s1n%d kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)",
				i, i%4)
			if _, err := s.Ingest([]IngestBatch{{Stream: "console", Lines: []string{line}}}); err != nil {
				errs <- fmt.Errorf("ingest %d: %w", i, err)
			}
		}
	}()

	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < queries; i++ {
				// All goroutines alternate over two identical query
				// shapes, maximising coalescing and cache contention.
				target := "/v1/diagnose"
				if i%2 == 1 {
					target = "/v1/diagnose?format=json"
				}
				rec := get(t, h, target)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("querier %d: %s = %d", g, target, rec.Code)
					continue
				}
				if rec.Body.Len() == 0 {
					errs <- fmt.Errorf("querier %d: empty body", g)
				}
				if rec.Header().Get("X-Hpcfail-Watermark") == "" {
					errs <- fmt.Errorf("querier %d: missing watermark header", g)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := s.Watermark(); got != 1+ingestions {
		t.Errorf("final watermark = %d, want %d", got, 1+ingestions)
	}
	if hits, misses := s.counter(mCacheHits), s.counter(mCacheMisses); hits+misses+s.counter(mCoalesced) == 0 {
		t.Error("hammer exercised neither cache nor singleflight")
	} else {
		t.Logf("cache hits=%d misses=%d coalesced=%d", hits, misses, s.counter(mCoalesced))
	}
}
