package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"hpcfail/internal/events"
	"hpcfail/internal/logparse"
	"hpcfail/internal/replica"
	"hpcfail/internal/wal"
)

// Replication model. When Config.ReplicationDir is set, the server
// journals every accepted ingest request — the raw batches, verbatim —
// as a replica.Entry in a write-ahead log *before* committing it to the
// live corpus, and serves the entry stream on GET /v1/wal. The entry is
// the unit of crash safety and of replication at once:
//
//   - Crash safety: a restarted primary Seeds its bootstrap corpus and
//     OpenReplicationLog replays the journal, reconstructing exactly
//     the acknowledged ingest history (journal-then-commit means an
//     acknowledged watermark is always on disk; a crash mid-append
//     leaves a torn frame the WAL rolls back, and that request was
//     never acknowledged).
//   - Replication: a replica built from the same bootstrap folds the
//     entries through Apply in watermark order. Because parsing and the
//     incremental engine are deterministic and batch-split-invariant,
//     a replica at watermark W serves /v1/diagnose bytes identical to
//     the primary's at W.
//
// Epochs fence deposed primaries. Promote mints epoch+1 and journals an
// epoch marker; entries always carry their writer's epoch, and Apply
// rejects entries from any epoch below the server's own — so after a
// promotion, writes a split-brain old primary keeps producing can never
// enter a promoted node's history.
var (
	// ErrJournal wraps replication-WAL failures during ingest: the
	// request was NOT accepted (the watermark did not advance). A
	// failure that reached the WAL (Append or Sync) also fail-stops the
	// writer role — the tail may hold a torn or unacknowledged frame,
	// so journaling anything more at the same watermark could diverge a
	// restart or a tailing replica from the acknowledged history. Every
	// later write is refused with ErrJournal until a restart re-opens
	// (and thereby re-verifies and truncates) the log.
	ErrJournal = errors.New("server: replication journal write failed")
	// ErrFenced rejects an entry whose epoch predates the server's: its
	// writer was deposed and its fork of history is abandoned.
	ErrFenced = errors.New("server: entry from a fenced epoch")
)

// OpenReplicationLog opens the replication WAL under
// Config.ReplicationDir and replays it through the corpus, restoring
// every acknowledged post-seed ingest. Call after Seed and before
// serving; a no-op when ReplicationDir is unset.
func (s *Server) OpenReplicationLog() error {
	if s.cfg.ReplicationDir == "" {
		return nil
	}
	l, err := wal.Open(s.cfg.ReplicationDir, wal.Options{
		SegmentBytes: s.cfg.ReplicationSegmentBytes,
		Sync:         s.cfg.ReplicationSync,
	})
	if err != nil {
		return err
	}
	// The manifest pins the WAL to this node's bootstrap: file-mode
	// tailers verify it before applying (HTTP tailers get the same
	// check from the hello frame), and a restart with the wrong
	// bootstrap corpus is refused here instead of silently replaying
	// someone else's history.
	seed := s.SeedWatermark()
	if m, ok, merr := replica.ReadManifest(s.cfg.ReplicationDir); merr != nil {
		l.Close()
		return merr
	} else if ok && m.SeedWatermark != seed {
		l.Close()
		return fmt.Errorf("server: replication WAL %s was journaled over seed watermark %d, this node seeded %d — wrong bootstrap or wrong directory",
			s.cfg.ReplicationDir, m.SeedWatermark, seed)
	} else if !ok {
		if werr := replica.WriteManifest(s.cfg.ReplicationDir, replica.Manifest{SeedWatermark: seed}); werr != nil {
			l.Close()
			return werr
		}
	}
	// Replay runs before s.repl is installed, so foldEntry commits the
	// entries without re-journaling them — they are already the log.
	if err := l.Replay(func(payload []byte) error {
		e, derr := replica.DecodeEntry(payload)
		if derr != nil {
			return derr
		}
		return s.foldEntry(e)
	}); err != nil {
		l.Close()
		return fmt.Errorf("server: replaying replication log: %w", err)
	}
	s.stageMu.Lock()
	if n := len(s.stageQ); n != 0 {
		// A write staged while s.repl was nil carries no encoded payload;
		// letting it drain after the journal opens would append a
		// zero-length frame that bricks the next replay. Unreachable when
		// the documented call order (open before serving) is respected.
		s.stageMu.Unlock()
		l.Close()
		return fmt.Errorf("server: %d writes staged before the replication log opened — OpenReplicationLog must run before serving", n)
	}
	s.repl = l
	s.stageMu.Unlock()
	return nil
}

// CloseReplication seals and closes the replication WAL. Call after the
// HTTP server has drained.
func (s *Server) CloseReplication() error {
	// Holding the leader slot excludes a leader mid-append; with it held
	// no group is touching the handle, and clearing s.repl under stageMu
	// makes any later leader see replication as off.
	s.commitSem <- struct{}{}
	s.stageMu.Lock()
	l := s.repl
	s.repl = nil
	s.stageMu.Unlock()
	<-s.commitSem
	if l == nil {
		return nil
	}
	return l.Close()
}

// Epoch returns the server's current fencing epoch.
func (s *Server) Epoch() uint64 {
	return s.epoch.Load()
}

// SeedWatermark returns the watermark the bootstrap seed covered (1
// after Seed, 0 on an unseeded server) — the value replica tailers must
// agree with the primary on.
func (s *Server) SeedWatermark() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seedWM
}

// SetReadOnly flips replica mode: HTTP ingest is redirected to the
// primary with 421 while entries keep arriving through Apply. Call
// before serving; Promote clears it.
func (s *Server) SetReadOnly(ro bool) { s.readOnly.Store(ro) }

// ReadOnly reports whether the server is in replica mode.
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

// SetReplicaStatus installs the tailer-status source the handlers use
// for degraded-mode headers, /healthz and /metrics. Call before
// serving.
func (s *Server) SetReplicaStatus(fn func() replica.Status) { s.replicaStatus = fn }

// Apply folds one replicated entry into the corpus: the replica-side
// twin of Ingest, fed by a tailer. Entries must arrive in watermark
// order; duplicates are skipped, stale-epoch entries are rejected with
// ErrFenced, and a gap is an error (the tailer treats both as fatal —
// rightly: a promoted node must stop tailing its deposed source). The
// entry is re-journaled into this node's own WAL, so a promoted replica
// can itself crash-restart and serve /v1/wal to its own replicas.
func (s *Server) Apply(e replica.Entry) error {
	return s.foldEntry(e)
}

// foldEntry parses one entry and pushes it through the group committer:
// stage (fence/sequence validation, watermark bookkeeping, WAL payload)
// then commit. When s.repl is open the entry is re-journaled as part of
// its group's single fsync; during replay s.repl is still nil, so the
// same path commits without journaling.
func (s *Server) foldEntry(e replica.Entry) error {
	var all []events.Record
	var sreps []logparse.StreamReport
	quarantined := 0
	for _, b := range e.Batches {
		stream, err := events.ParseStream(b.Stream)
		if err != nil {
			return fmt.Errorf("entry watermark %d: batch stream %q: %w", e.Watermark, b.Stream, err)
		}
		recs, srep := logparse.ParseLinesReport(stream, s.cfg.Scheduler, b.Lines)
		all = append(all, recs...)
		sreps = append(sreps, srep)
		quarantined += srep.Quarantined
	}

	st, err := s.stageEntry(e, all, sreps, quarantined)
	if err != nil {
		return err
	}
	if st == nil {
		return nil // duplicate needing no work
	}
	if err := s.commitStaged(st); err != nil {
		return err
	}
	// Feed the watcher after the ack, off the leader's critical section.
	// Replay and the tailer call foldEntry serially, so replica feeds
	// stay in watermark order. A marker staged for a duplicate entry
	// commits only the epoch; the duplicate's records were fed when the
	// entry first applied.
	if !st.marker {
		s.watcher.FeedAll(all)
		s.mine(all, sreps)
	}
	return nil
}

// JournalBroken reports whether a journal failure has fail-stopped the
// writer role (see groupcommit.go); surfaced on /healthz so operators
// know a restart is required before the node accepts writes again.
func (s *Server) JournalBroken() bool {
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	return s.replBroken
}

// Promote makes this node the primary: it mints the next fencing epoch,
// journals an epoch marker so the promotion survives a crash-restart,
// and reopens HTTP ingest. Entries still arriving from the deposed
// primary's epoch are rejected from here on. Returns the new epoch and
// the COMMITTED watermark the node serves from — with writes still in
// flight during the promotion, the highest staged watermark may not be
// durable or acked yet, so it is never reported.
//
// The marker rides the group committer like any other write, so the
// fsync that makes the promotion durable happens OUTSIDE every
// read-serving lock — a slow disk during failover no longer stalls
// /v1/diagnose or /healthz.
func (s *Server) Promote() (epoch, watermark uint64, err error) {
	var st *staged
	s.stageMu.Lock()
	epoch = s.epoch.Load() + 1
	s.epoch.Store(epoch)
	// The marker reuses the highest STAGED watermark (not the committed
	// one): replay and downstream tailers adopt its epoch through the
	// duplicate path without perturbing watermark contiguity, and staged
	// writes ahead of the marker commit before it in the same or an
	// earlier group.
	markerWM := s.stageWM
	if s.repl != nil && markerWM > 0 {
		if s.replBroken {
			err = errJournalBroken()
		} else {
			me := replica.Entry{Epoch: epoch, Watermark: markerWM, Batches: []replica.Batch{}}
			buf, eerr := replica.AppendEntry(getEntryBuf(), me)
			if eerr != nil {
				err = fmt.Errorf("%w: %v", ErrJournal, eerr)
			} else {
				st = &staged{e: me, encoded: buf, marker: true, done: make(chan struct{})}
				s.stageQ = append(s.stageQ, st)
			}
		}
	}
	s.stageMu.Unlock()
	if st != nil {
		err = s.commitStaged(st)
	}
	if st == nil || err != nil {
		// Wake waiters so streamers pick up the new epoch even when the
		// marker was not (or could not be) journaled.
		s.bump()
	}
	if err != nil {
		// The in-memory epoch stays bumped — failing toward a higher
		// epoch can fence spuriously but never lets a deposed writer in.
		return 0, 0, fmt.Errorf("server: journaling promotion: %w", err)
	}
	s.readOnly.Store(false)
	return epoch, s.watermark.Load(), nil
}

// epochWatermark returns an (epoch, watermark) pair that actually
// coexisted. Epochs are monotonic, so if the epoch reads the same
// before and after the watermark load, that watermark was committed
// at (or before) that epoch — two independent loads could otherwise
// pair a pre-promotion watermark with a post-promotion epoch.
func (s *Server) epochWatermark() (epoch, wm uint64) {
	for {
		epoch = s.epoch.Load()
		wm = s.watermark.Load()
		if s.epoch.Load() == epoch {
			return epoch, wm
		}
	}
}

// handlePromote serves POST /v1/promote — the replicactl promote
// endpoint. Tracked, not guarded: promotion is exactly what an operator
// does while the fleet is unhealthy.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	epoch, wm, err := s.Promote()
	if err != nil {
		http.Error(w, "promotion failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Epoch     uint64 `json:"epoch"`
		Watermark uint64 `json:"watermark"`
	}{epoch, wm})
}

// handleWALStream serves GET /v1/wal?after=W: an NDJSON stream opening
// with a hello frame (epoch, seed watermark, tip), followed by every
// journaled entry with watermark > W in order, then live entries as
// they commit, with heartbeat frames while idle. The stream ends when
// the client disconnects or the server drains — BeginDrain closes every
// stream so http.Server.Shutdown never wedges on a tailing replica.
func (s *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	if !s.replOpen() {
		http.Error(w, "replication not enabled", http.StatusNotFound)
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}
	after := uint64(0)
	if str := r.URL.Query().Get("after"); str != "" {
		n, err := strconv.ParseUint(str, 10, 64)
		if err != nil {
			http.Error(w, "bad query: after: want watermark", http.StatusBadRequest)
			return
		}
		after = n
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	send := func(f replica.Frame) bool {
		data, err := json.Marshal(f)
		if err != nil {
			return false
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	hepoch, hwm := s.epochWatermark()
	hello := replica.Hello{Epoch: hepoch, SeedWatermark: s.SeedWatermark(), Watermark: hwm}
	if !send(replica.Frame{Hello: &hello}) {
		return
	}

	tr := wal.NewTailReader(s.cfg.ReplicationDir, wal.Offset{})
	defer tr.Close()
	heartbeat := time.NewTicker(s.cfg.SSEHeartbeat)
	defer heartbeat.Stop()
	sent := after
	for {
		// Grab the wake channel BEFORE draining the reader: an entry
		// committed between our last Next and the select still closed
		// this channel, so the wakeup cannot be missed.
		ch := s.wmWait()
		for {
			payload, err := tr.Next()
			if err != nil || payload == nil {
				if err != nil {
					return // damaged or unreadable journal: drop the stream
				}
				break
			}
			e, derr := replica.DecodeEntry(payload)
			if derr != nil {
				return
			}
			if e.Watermark <= sent && len(e.Batches) > 0 {
				continue // resume skip; epoch markers still flow through
			}
			if !send(replica.Frame{Entry: &e}) {
				return
			}
			s.metrics.add(mReplStreamed, 1)
			if e.Watermark > sent {
				sent = e.Watermark
			}
		}
		select {
		case <-ch:
		case <-s.broker.done:
			return
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			hbEpoch, hbWM := s.epochWatermark()
			hb := replica.Heartbeat{Epoch: hbEpoch, Watermark: hbWM}
			if !send(replica.Frame{Heartbeat: &hb}) {
				return
			}
		}
	}
}

// retryAfterSeconds renders Config.RetryAfter as a Retry-After value.
func (s *Server) retryAfterSeconds() string {
	return strconv.Itoa(int((s.cfg.RetryAfter + time.Second - 1) / time.Second))
}

// waitWatermark blocks a min_watermark read until the corpus reaches
// min, the wait budget runs out (412 + a pointer at the primary — the
// client should read its own write there), or the server drains (503 +
// Retry-After). True means the read may proceed.
//
// The caller must hold an admission slot (guard). A read that must
// park hands its slot back for the duration and reacquires it before
// returning, so a burst of read-your-writes requests against a lagging
// replica parks off-slot instead of occupying every MaxInflight slot
// for up to MaxWatermarkWait each and shedding unrelated traffic.
func (s *Server) waitWatermark(w http.ResponseWriter, min uint64) bool {
	if s.watermark.Load() >= min {
		return true
	}
	<-s.sem // guard's deferred release needs the slot back: every path below reacquires
	ok := s.parkWatermark(w, min)
	s.sem <- struct{}{}
	return ok
}

// parkWatermark is waitWatermark's slow path, run while the request
// holds no admission slot. It writes the error response itself when
// the read cannot proceed.
func (s *Server) parkWatermark(w http.ResponseWriter, min uint64) bool {
	deadline := time.Now().Add(s.cfg.MaxWatermarkWait)
	for {
		// Channel first, watermark second: a commit that advances past
		// min after the load still closes the channel we park on.
		ch := s.wmWait()
		wm := s.watermark.Load()
		if wm >= min {
			return true
		}
		if s.draining.Load() {
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			http.Error(w, "server is draining", http.StatusServiceUnavailable)
			return false
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			if s.cfg.PrimaryURL != "" {
				w.Header().Set("X-Hpcfail-Primary", s.cfg.PrimaryURL)
			}
			w.Header().Set("X-Hpcfail-Watermark", strconv.FormatUint(wm, 10))
			http.Error(w, fmt.Sprintf("watermark %d not yet replicated (at %d); read the primary", min, wm),
				http.StatusPreconditionFailed)
			return false
		}
		timer := time.NewTimer(remain)
		select {
		case <-ch:
		case <-s.broker.done:
		case <-timer.C:
		}
		timer.Stop()
	}
}

// annotateReplica stamps replica-health headers on a response: whether
// this node's view is degraded (source unreachable / breaker open) and
// how many watermarks it trails the primary by. Clients doing
// bounded-staleness reads branch on these.
func (s *Server) annotateReplica(w http.ResponseWriter) {
	if s.replicaStatus == nil || !s.readOnly.Load() {
		// A promoted node still has its (now idle) tailer status source
		// installed; its responses are primary responses, not stale reads.
		return
	}
	st := s.replicaStatus()
	w.Header().Set("X-Hpcfail-Replica-Degraded", strconv.FormatBool(st.Degraded))
	w.Header().Set("X-Hpcfail-Replica-Lag", strconv.FormatUint(st.Lag(), 10))
}
