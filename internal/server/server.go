// Package server is the online diagnosis service: a long-running HTTP
// front end that owns a live log corpus and a streaming core.Watcher.
// It accepts batched log lines (POST /v1/ingest), answers diagnosis
// queries over the corpus so far (GET /v1/diagnose) with the exact
// bytes cmd/diagnose would print, streams watcher alarms over SSE
// (GET /v1/alarms), and exposes health, Prometheus metrics and pprof.
//
// Scale mechanics, in one place:
//
//   - Ingest watermark. Every accepted batch bumps a monotonic
//     watermark. Query results are computed against an immutable
//     snapshot taken at a watermark, and every cache key embeds the
//     watermark it was rendered at — so ingest invalidates the cache
//     by construction, without tracking or purging entries.
//   - Incremental engine. The server owns one core.Engine holding the
//     live pipeline state. Ingested batches queue as pending deltas;
//     the first query after an ingest applies them in cost proportional
//     to the pending records — not the corpus — and snapshots the
//     engine, whose output is byte-identical to a from-scratch rebuild
//     (proven by the repo-root differential harness). The full-corpus
//     re-index + re-diagnose this replaced was the post-ingest p95.
//   - Singleflight. The expensive steps (applying pending deltas,
//     rendering a response) are coalesced: concurrent identical queries
//     share one computation, detached from any single request, so one
//     impatient client cannot cancel work others are waiting on.
//   - Admission control. A semaphore bounds concurrently served
//     ingest/diagnose requests; overflow is shed immediately with 429
//     and a Retry-After hint rather than queueing without bound.
//   - Graceful drain. BeginDrain flips health to 503, rejects new
//     work and terminates SSE streams; after http.Server.Shutdown has
//     drained in-flight requests, Checkpoint persists the watcher via
//     the snapshot machinery so a restart resumes alarm state.
package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/core"
	"hpcfail/internal/events"
	"hpcfail/internal/logparse"
	"hpcfail/internal/logstore"
	"hpcfail/internal/miner"
	"hpcfail/internal/remedy"
	"hpcfail/internal/replica"
	"hpcfail/internal/topology"
	"hpcfail/internal/wal"
)

// Config tunes the service. The zero value is usable; unset fields take
// the defaults documented per field.
type Config struct {
	// Scheduler selects the log dialect for ingested batches.
	Scheduler topology.SchedulerType
	// Pipeline configures the diagnosis windows (zero value =
	// core.DefaultConfig()).
	Pipeline core.Config
	// MaxInflight bounds concurrently served ingest/diagnose requests;
	// excess requests are shed with 429 (default 64).
	MaxInflight int
	// QueryTimeout bounds one diagnosis computation (default 30s). The
	// incremental engine applies pending ingest deltas in cost
	// proportional to the delta, not the corpus, and an apply is not
	// cancellable — the timeout is retained as configuration surface and
	// as the bound a from-scratch rebuild path would use.
	QueryTimeout time.Duration
	// CacheEntries bounds the rendered-response LRU (default 256).
	CacheEntries int
	// CheckpointPath, when set, is where Checkpoint persists the
	// watcher snapshot on shutdown.
	CheckpointPath string
	// AlarmBuffer is the per-SSE-subscriber event buffer; a subscriber
	// falling this far behind starts losing events (default 64).
	AlarmBuffer int
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// EnableRemedy turns on the closed-loop remediation engine: watcher
	// detections and alarms are routed into SOP queues and executed
	// against RemedyCluster, with every decision ticketed and exposed on
	// /v1/remediations.
	EnableRemedy bool
	// Remedy tunes the remediation engine (zero value = remedy
	// defaults). Only read when EnableRemedy is set.
	Remedy remedy.Config
	// RemedyCluster is the actuator the SOPs execute against; nil
	// selects an in-process simulated cluster, which stands in for the
	// real cluster-management plane.
	RemedyCluster remedy.Cluster
	// ReplicationDir, when set, enables the replication WAL: every
	// accepted ingest is journaled there before it commits, restarts
	// replay it, and GET /v1/wal streams it to replicas.
	ReplicationDir string
	// ReplicationSync fsyncs the WAL on every journaled entry. Off by
	// default: the tests and benchmarks pick their own durability.
	ReplicationSync bool
	// ReplicationSegmentBytes rotates WAL segments (0 = wal default).
	ReplicationSegmentBytes int64
	// Epoch is the starting fencing epoch (default 1). Replayed and
	// replicated entries can only raise it; Promote mints the next one.
	Epoch uint64
	// PrimaryURL is the primary this node defers to, advertised in the
	// X-Hpcfail-Primary header on 421 (replica ingest) and 412
	// (min_watermark timeout) responses.
	PrimaryURL string
	// MaxWatermarkWait bounds how long a min_watermark read blocks for
	// replication to catch up before 412 (default 2s).
	MaxWatermarkWait time.Duration
	// IngestGroupMax bounds how many staged writes one group commit may
	// cover (0 = unbounded). Group commit amortizes one fsync over every
	// write staged while the previous group was syncing; the bound caps
	// ack-latency spread under extreme bursts at the cost of more
	// fsyncs.
	IngestGroupMax int
	// SSEHeartbeat is the comment-ping cadence on /v1/alarms and the
	// heartbeat-frame cadence on /v1/wal (default 15s).
	SSEHeartbeat time.Duration
	// EnableMiner turns on online template mining over the quarantine
	// stream: every quarantined or unclassified ingested line feeds an
	// internal/miner engine, GET /v1/templates serves the live template
	// table (and exports a bootstrap profile), miner series appear on
	// /metrics, and promoted templates surface as "candidate" events on
	// the alarm stream. Off by default; disabled ingest pays one nil
	// check. Mining never touches the classification of lines the
	// static formats accept — /v1/diagnose stays byte-identical.
	EnableMiner bool
	// Miner tunes the mining engine (zero value = miner defaults).
	// Only read when EnableMiner is set.
	Miner miner.Config
}

func (c Config) withDefaults() Config {
	if c.Pipeline == (core.Config{}) {
		c.Pipeline = core.DefaultConfig()
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.AlarmBuffer <= 0 {
		c.AlarmBuffer = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Epoch == 0 {
		c.Epoch = 1
	}
	if c.MaxWatermarkWait <= 0 {
		c.MaxWatermarkWait = 2 * time.Second
	}
	if c.SSEHeartbeat <= 0 {
		c.SSEHeartbeat = 15 * time.Second
	}
	return c
}

// Server owns the live corpus and watcher. Create with New, optionally
// Seed a bootstrap corpus, serve Handler, then BeginDrain + Checkpoint
// on the way down.
type Server struct {
	cfg     Config
	metrics *metrics
	broker  *broker
	watcher *core.Watcher
	// miner is the online template miner (nil when disabled). It owns
	// its own mutex; ingest feeds it after commit, off every lock here.
	miner *miner.Miner

	// sem is the admission semaphore; holding a slot means the request
	// is being served.
	sem chan struct{}

	// mu guards the live corpus state: the pending (ingested but not
	// yet applied) record deltas, the total record count, the
	// aggregated ingest ledger, and the seed watermark. Only the commit
	// leader and the snapshot applier take it — no read handler does.
	mu       sync.Mutex
	pending  []events.Record
	recCount int
	rep      *logstore.IngestReport
	seedWM   uint64

	// watermark versions the corpus. Stores happen under mu (so an
	// applier drains a consistent pending/watermark pair); loads are
	// lock-free — the watermark is the single hottest read in the
	// service (every query, waiter, heartbeat and scrape) and must
	// never queue behind the write path.
	watermark atomic.Uint64

	// epoch is the fencing epoch: written under stageMu (New/Seed
	// setup, Promote, stage-time adoption of a newer epoch), loaded
	// lock-free.
	epoch atomic.Uint64

	// snapMu guards the memoized snapshot — its own lock, so queries
	// checking the memo never contend with the ingest path.
	snapMu sync.Mutex
	snap   *snapshot

	// Group-commit staging (see groupcommit.go). stageMu is the short
	// lock: the staged-write queue, the last staged watermark, the
	// journal handle and the fail-stop latch — held for pointer pushes
	// and integer assignments, never across I/O. commitSem is the
	// leader slot, a one-slot semaphore held across one group's
	// append+fsync+commit. It is a channel, not a mutex, so a staged
	// writer can select between "my group committed" and "I am the
	// leader now" — a writer whose ack arrives while it waits leaves
	// immediately instead of queuing for a lock it no longer needs.
	// payloads is the leader's reusable AppendBatch argument scratch.
	stageMu sync.Mutex
	stageQ  []*staged
	stageWM uint64
	repl    *wal.Log
	// replBroken latches after a journal Append/Sync failure: the WAL
	// tail is unverified, so the writer role is fail-stopped (every
	// later journal write refused) until a restart re-opens the log.
	replBroken bool

	commitSem chan struct{}
	payloads  [][]byte
	// testSyncHook, when set (tests only, before serving), replaces the
	// leader's group Sync call to inject failures and stalls.
	testSyncHook func() error

	// wmMu guards the broadcast channel closed-and-replaced on every
	// watermark advance so min_watermark waiters and /v1/wal streamers
	// wake without polling.
	wmMu sync.Mutex
	wmCh chan struct{}

	// eng is the incremental diagnosis pipeline holding the live corpus
	// and per-detection state; engMu serialises ApplyBatch/Snapshot (the
	// engine is single-writer) and orders pending-drain against snapshot
	// memoization.
	eng   *core.Engine
	engMu sync.Mutex

	// cloneCalls counts ingest-ledger deep copies. Cloning is per
	// applied delta, never per query — the clone-count regression test
	// pins that down.
	cloneCalls atomic.Uint64

	// sf coalesces snapshot builds and response renders.
	sf flightGroup

	cache *lruCache

	// remedy is the closed-loop remediation engine (nil when disabled).
	// remedyMu serializes the ticket-to-counter accounting; remedyLast
	// is the highest ticket id already counted into the metrics.
	remedy     *remedy.Engine
	remedyMu   sync.Mutex
	remedyLast int64

	draining       atomic.Bool
	lastIngestWall atomic.Int64 // unix nanos of the last accepted batch
	started        time.Time

	// readOnly marks replica mode: HTTP ingest answers 421, entries
	// arrive through Apply instead. Promote clears it.
	readOnly atomic.Bool
	// replicaStatus reads the tailer's health for degraded headers,
	// /healthz and /metrics (nil on a primary). Set before serving.
	replicaStatus func() replica.Status
}

// snapshot is an immutable view of the corpus at one watermark: the
// indexed store, a stable copy of the ingest ledger, and the diagnosis
// result. Queries and cache keys are defined entirely in terms of it.
type snapshot struct {
	watermark uint64
	store     *logstore.Store
	rep       *logstore.IngestReport
	res       *core.Result
}

// detectionEvent and alarmEvent are the SSE payload shapes.
type detectionEvent struct {
	Time     time.Time `json:"time"`
	Node     string    `json:"node"`
	Terminal string    `json:"terminal"`
	JobID    int64     `json:"job_id,omitempty"`
}

type alarmEvent struct {
	Time        time.Time `json:"time"`
	Node        string    `json:"node"`
	HasExternal bool      `json:"has_external"`
}

// candidateEvent is the SSE payload for a promoted mined signature —
// the low-confidence detection kind. No node, no time: quarantined
// lines have neither until someone profiles them.
type candidateEvent struct {
	Signature string `json:"signature"`
	Template  string `json:"template"`
	Count     uint64 `json:"count"`
	Example   string `json:"example,omitempty"`
	Burst     bool   `json:"burst,omitempty"`
}

// New constructs a server with an empty corpus.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		metrics:   newMetrics(),
		sem:       make(chan struct{}, cfg.MaxInflight),
		rep:       &logstore.IngestReport{},
		eng:       core.NewEngine(cfg.Pipeline),
		cache:     newLRU(cfg.CacheEntries),
		started:   time.Now(),
		wmCh:      make(chan struct{}),
		commitSem: make(chan struct{}, 1),
	}
	s.epoch.Store(cfg.Epoch)
	s.broker = newBroker(func() { s.metrics.add(mSSEDropped, 1) })
	if cfg.EnableRemedy {
		cluster := cfg.RemedyCluster
		if cluster == nil {
			cluster = remedy.NewSimCluster(nil, remedy.SimOptions{})
		}
		s.remedy = remedy.New(cluster, remedy.DefaultSOPs(cluster), cfg.Remedy)
	}
	s.watcher = core.NewWatcher(cfg.Pipeline, func(d core.Detection) {
		s.metrics.add(mDetections, 1)
		s.broker.publish("failure", detectionEvent{
			Time: d.Time, Node: d.Node.String(), Terminal: d.Terminal, JobID: d.JobID,
		})
		if s.remedy != nil {
			s.remedy.Submit(remedy.ConditionFromDetection(d))
			s.remedy.Service(d.Time)
			s.countRemedyTickets()
		}
	})
	s.watcher.OnAlarm = func(a core.Alarm) {
		s.metrics.add(mAlarms, 1)
		s.broker.publish("alarm", alarmEvent{Time: a.Time, Node: a.Node.String(), HasExternal: a.HasExternal})
		if s.remedy != nil {
			s.remedy.Submit(remedy.ConditionFromAlarm(a))
			s.remedy.Service(a.Time)
			s.countRemedyTickets()
		}
	}
	if cfg.EnableMiner {
		s.watcher.OnCandidate = func(c core.Candidate) {
			s.metrics.add(mCandidates, 1)
			s.broker.publish("candidate", candidateEvent{
				Signature: c.Signature, Template: c.Template, Count: c.Count,
				Example: c.Example, Burst: c.Burst,
			})
		}
		s.miner = miner.New(cfg.Miner)
		s.miner.OnPromote = func(c miner.Candidate) {
			// Promotion fires inside a miner Ingest (miner mutex held);
			// NoteCandidate takes only the watcher mutex, which is never
			// held while feeding the miner — no ordering cycle.
			s.metrics.add(mMinerPromoted, 1)
			s.watcher.NoteCandidate(core.Candidate{
				Signature: c.Category, Template: c.Template, Count: c.Count,
				Example: c.Example, Burst: c.Burst,
			})
		}
	}
	return s
}

// Miner exposes the template miner (nil when disabled).
func (s *Server) Miner() *miner.Miner { return s.miner }

// mine feeds one parsed batch's unmatched material to the miner: the
// full quarantine stream of each stream report, plus internal lines
// that parsed but no static pattern classified. No-op (one nil check)
// when mining is disabled.
func (s *Server) mine(all []events.Record, sreps []logparse.StreamReport) {
	if s.miner == nil {
		return
	}
	lines := uint64(0)
	for i := range sreps {
		sreps[i].EachQuarantined(func(l string) {
			s.miner.Ingest(l)
			lines++
		})
	}
	for i := range all {
		if all[i].Category == "unclassified" && all[i].Msg != "" {
			s.miner.Ingest(all[i].Msg)
			lines++
		}
	}
	if lines > 0 {
		s.metrics.add(mMinerLines, lines)
	}
}

// Remedy exposes the remediation engine (nil when disabled).
func (s *Server) Remedy() *remedy.Engine { return s.remedy }

// countRemedyTickets folds tickets minted since the last count into the
// Prometheus counters, so /metrics tracks the ledger without re-walking
// it on every scrape.
func (s *Server) countRemedyTickets() {
	s.remedyMu.Lock()
	defer s.remedyMu.Unlock()
	for _, tk := range s.remedy.Tickets(s.remedyLast) {
		switch tk.Decision {
		case remedy.DecisionExecuted:
			s.metrics.add(mRemedyExecuted, 1)
		case remedy.DecisionRefused:
			s.metrics.add(mRemedyRefused, 1)
		case remedy.DecisionFailed:
			s.metrics.add(mRemedyFailed, 1)
		}
		s.metrics.add(mRemedyRequeues, uint64(len(tk.Requeued)))
		s.remedyLast = tk.ID
	}
}

// Watcher exposes the live watcher (for checkpoint restore before
// serving starts; do not mutate once the handler is live).
func (s *Server) Watcher() *core.Watcher { return s.watcher }

// Seed installs a bootstrap corpus — typically logstore.LoadDirReport
// output — as watermark 1, replaying it through the watcher so online
// state (refractory gaps, apid resolution, burst windows) continues
// from the end of the bootstrap rather than from nothing. The corpus is
// applied to the incremental engine and fully diagnosed eagerly, so the
// startup cost covers the whole pipeline and the first query serves a
// memoized snapshot — byte-identical to what the CLI prints over the
// same directory. Call before serving; Seed is not synchronised against
// live handlers.
func (s *Server) Seed(store *logstore.Store, rep *logstore.IngestReport) {
	recs := store.All()

	s.engMu.Lock()
	start := time.Now()
	s.eng.ApplyBatch(recs)
	res := s.eng.Snapshot(rep.LostChunks())
	s.metrics.observeApply(time.Since(start))
	s.engMu.Unlock()

	s.mu.Lock()
	s.recCount = len(recs)
	s.rep = s.cloneRep(rep)
	s.seedWM = 1
	s.watermark.Store(1)
	s.mu.Unlock()
	s.snapMu.Lock()
	s.snap = &snapshot{watermark: 1, store: res.Store, rep: s.cloneRep(rep), res: res}
	s.snapMu.Unlock()
	s.stageMu.Lock()
	s.stageWM = 1
	s.stageMu.Unlock()
	s.bump()
	s.watcher.FeedAll(recs)
	s.mine(recs, rep.Streams)
}

// Ingest parses and appends one request's batches: records enter the
// corpus (visible to the next snapshot), the watcher consumes them in
// arrival order, the ingest ledger accumulates the parse accounting,
// and the watermark advances once for the whole request. The write is
// staged and group-committed (see groupcommit.go): with replication
// enabled it is journaled — one Sync covering the whole group — and
// made durable *before* any state changes, so an acknowledged
// watermark is always durable; a journal failure (ErrJournal) leaves
// the watermark untouched and fail-stops the writer role until a
// restart re-opens (re-scans and truncates) the log. Concurrent
// Ingest calls are safe and are exactly what amortizes the fsync.
func (s *Server) Ingest(batches []IngestBatch) (IngestResult, error) {
	var all []events.Record
	var sreps []logparse.StreamReport
	quarantined := 0
	for _, b := range batches {
		stream, err := events.ParseStream(b.Stream)
		if err != nil {
			return IngestResult{}, fmt.Errorf("batch stream %q: %w", b.Stream, err)
		}
		recs, srep := logparse.ParseLinesReport(stream, s.cfg.Scheduler, b.Lines)
		all = append(all, recs...)
		sreps = append(sreps, srep)
		quarantined += srep.Quarantined
	}

	st, err := s.stageIngest(batches, all, sreps, quarantined)
	if err != nil {
		return IngestResult{}, err
	}
	if err := s.commitStaged(st); err != nil {
		return IngestResult{}, err
	}
	// Feed the watcher on this goroutine, not the commit leader's: the
	// watcher serializes on its own mutex and its reorder buffer absorbs
	// interleaving between concurrent ingesters, exactly as it did when
	// the serialized path fed outside the server lock.
	s.watcher.FeedAll(all)
	s.mine(all, sreps)
	return IngestResult{Accepted: len(all), Quarantined: quarantined, Watermark: st.e.Watermark}, nil
}

// IngestBatch is one stream's worth of raw log lines. It is the
// replication entry's batch type verbatim: what the client sent is what
// the WAL journals and what replicas re-parse.
type IngestBatch = replica.Batch

// IngestResult accounts one accepted ingest request.
type IngestResult struct {
	Accepted    int    `json:"accepted"`
	Quarantined int    `json:"quarantined"`
	Watermark   uint64 `json:"watermark"`
}

// snapshotNow returns a snapshot at (at least) the current watermark,
// advancing the incremental engine through the pending ingest deltas at
// most once per watermark: the apply runs under singleflight, so
// concurrent queries after an ingest share one delta application — in
// cost proportional to the pending records, not the corpus — and no
// client's cancellation aborts it for the rest.
func (s *Server) snapshotNow() (*snapshot, error) {
	wm := s.watermark.Load()
	s.snapMu.Lock()
	memo := s.snap
	s.snapMu.Unlock()

	if memo != nil && memo.watermark == wm && memo.res != nil {
		return memo, nil
	}

	v, err, _ := s.sf.Do(fmt.Sprintf("snap@%d", wm), func() (any, error) {
		return s.applyPending(wm), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*snapshot), nil
}

// applyPending drains the pending ingest deltas into the engine and
// memoizes the fresh snapshot. engMu serialises engine access and makes
// drain→apply→memoize atomic with respect to other appliers; ingests
// landing mid-apply stay pending and are picked up by the next query at
// their (higher) watermark.
func (s *Server) applyPending(wm uint64) *snapshot {
	s.engMu.Lock()
	defer s.engMu.Unlock()

	s.snapMu.Lock()
	if memo := s.snap; memo != nil && memo.watermark >= wm && memo.res != nil {
		// A concurrent applier already covered this watermark (or a later
		// one — serving fresher than asked is fine, the cache keys on the
		// snapshot's own watermark).
		s.snapMu.Unlock()
		return memo
	}
	s.snapMu.Unlock()

	s.mu.Lock()
	delta := s.pending
	s.pending = nil
	// Loaded under mu, where the commit leader stores it: the watermark
	// cannot run ahead of the drained pending deltas.
	curWM := s.watermark.Load()
	rep := s.cloneRep(s.rep)
	s.mu.Unlock()

	start := time.Now()
	s.eng.ApplyBatch(delta)
	res := s.eng.Snapshot(rep.LostChunks())
	s.metrics.observeApply(time.Since(start))

	snap := &snapshot{watermark: curWM, store: res.Store, rep: rep, res: res}
	s.snapMu.Lock()
	if s.snap == nil || s.snap.watermark <= curWM {
		s.snap = snap
	}
	s.snapMu.Unlock()
	return snap
}

// BeginDrain moves the server into draining: health flips to 503, new
// guarded requests are rejected, and SSE streams are terminated so
// http.Server.Shutdown can complete. Safe to call more than once.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.broker.close()
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// RestoreCheckpoint loads a watcher snapshot saved by Checkpoint into
// the live watcher, reporting whether one existed. Call before serving.
func (s *Server) RestoreCheckpoint(path string) (bool, error) {
	return core.LoadSnapshotFile(path, s.watcher)
}

// Checkpoint persists the watcher snapshot to Config.CheckpointPath
// (a no-op when unset). Call after the HTTP server has drained so no
// feeder is racing the save.
func (s *Server) Checkpoint() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	return core.SaveSnapshotFile(s.cfg.CheckpointPath, s.watcher)
}

// Watermark returns the current ingest watermark.
func (s *Server) Watermark() uint64 {
	return s.watermark.Load()
}

// Records returns the live record count (applied plus pending).
func (s *Server) Records() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recCount
}

// DiagnosedWatermark returns the watermark of the memoized snapshot —
// the freshest watermark a query can be answered at without applying
// pending deltas. Zero when nothing has been diagnosed yet.
func (s *Server) DiagnosedWatermark() uint64 {
	_, d := s.Staleness()
	return d
}

// Staleness returns the ingest watermark and the diagnosed watermark in
// one consistent read, so wm >= diagnosed always holds and their
// difference — watermarks ingested but not yet applied — can't
// underflow.
func (s *Server) Staleness() (wm, diagnosed uint64) {
	// Read the memo before the watermark: the memo can only lag, so
	// reading it first keeps wm >= diagnosed even against a concurrent
	// applier publishing a fresher snapshot.
	s.snapMu.Lock()
	if s.snap != nil && s.snap.res != nil {
		diagnosed = s.snap.watermark
	}
	s.snapMu.Unlock()
	wm = s.watermark.Load()
	return wm, diagnosed
}

// cloneRep counts and performs one ingest-ledger deep copy. All clones
// go through here so the regression test can assert cloning happens per
// applied delta, not per query.
func (s *Server) cloneRep(r *logstore.IngestReport) *logstore.IngestReport {
	s.cloneCalls.Add(1)
	return cloneReport(r)
}

// cloneReport deep-copies an ingest report so snapshot readers never
// share slices with the live ledger MergeStream keeps appending to.
func cloneReport(r *logstore.IngestReport) *logstore.IngestReport {
	if r == nil {
		return &logstore.IngestReport{}
	}
	cp := *r
	cp.Streams = make([]logparse.StreamReport, len(r.Streams))
	for i, srep := range r.Streams {
		cp.Streams[i] = srep
		cp.Streams[i].Samples = append([]string(nil), srep.Samples...)
		cp.Streams[i].Errs = append([]error(nil), srep.Errs...)
	}
	cp.Skipped = append([]logstore.FileWarning(nil), r.Skipped...)
	cp.Missing = append([]string(nil), r.Missing...)
	cp.Poisoned = append([]logstore.PoisonChunk(nil), r.Poisoned...)
	cp.Tripped = append([]logstore.BreakerTrip(nil), r.Tripped...)
	return &cp
}

// filterResult narrows a snapshot's result to the query's node/time
// filters. With no filters the result is returned untouched — which is
// what makes the unfiltered response byte-identical to the CLI. The
// summaries (breakdowns, MTBF, lead times) are recomputed by the
// renderer over the filtered subset, which is the useful reading of a
// scoped query.
func filterResult(res *core.Result, node cname.Name, hasNode bool, from, to time.Time) *core.Result {
	if !hasNode && from.IsZero() && to.IsZero() {
		return res
	}
	out := *res
	out.Detections = nil
	out.Diagnoses = nil
	for i, d := range res.Diagnoses {
		det := d.Detection
		if hasNode && det.Node != node {
			continue
		}
		if !from.IsZero() && det.Time.Before(from) {
			continue
		}
		if !to.IsZero() && det.Time.After(to) {
			continue
		}
		out.Detections = append(out.Detections, res.Detections[i])
		out.Diagnoses = append(out.Diagnoses, d)
	}
	return &out
}
