package server

import (
	"container/list"
	"sync"
)

// lruCache is the rendered-response cache: bounded, least-recently-used
// eviction, keyed by (watermark, query) strings. Because every key
// embeds the ingest watermark it was rendered at, entries for a stale
// corpus can never be served — a new batch bumps the watermark, new
// requests form new keys, and the old generation simply ages out.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry struct {
	key         string
	body        []byte
	contentType string
}

func newLRU(max int) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached body and content type, marking the entry most
// recently used.
func (c *lruCache) get(key string) (body []byte, contentType string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, "", false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*lruEntry)
	return e.body, e.contentType, true
}

// put inserts (or refreshes) an entry, evicting the least recently used
// one when the cache is full.
func (c *lruCache) put(key string, body []byte, contentType string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*lruEntry)
		e.body, e.contentType = body, contentType
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, body: body, contentType: contentType})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*lruEntry).key)
	}
}

// len reports the current entry count (for the metrics gauge).
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
