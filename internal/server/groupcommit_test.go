package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hpcfail/internal/replica"
	"hpcfail/internal/wal"
)

// ingestLine is a benign one-line batch the group-commit tests reuse.
var ingestLine = []IngestBatch{{Stream: "console", Lines: []string{
	"2015-03-03T08:00:00.000000Z c0-0c0s0n0 kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)",
}}}

// walWatermarks scans a replication WAL directory and returns every
// journaled watermark in append order, via the same TailReader the
// replication stream uses.
func walWatermarks(t *testing.T, dir string) []uint64 {
	t.Helper()
	tr := wal.NewTailReader(dir, wal.Offset{})
	defer tr.Close()
	var wms []uint64
	for {
		payload, err := tr.Next()
		if err != nil {
			t.Fatalf("scanning WAL: %v", err)
		}
		if payload == nil {
			return wms
		}
		e, err := replica.DecodeEntry(payload)
		if err != nil {
			t.Fatalf("decoding WAL entry: %v", err)
		}
		wms = append(wms, e.Watermark)
	}
}

// TestAckImpliesDurableAtEveryWatermark is the kill-at-every-acked-
// watermark harness for the group committer: many concurrent synced
// ingests, then the server is abandoned without any close (the
// in-process stand-in for kill -9 — nothing is flushed on our behalf),
// and a fresh node recovering purely from the directory must see every
// acknowledged watermark. If an ack ever preceded its group's fsync,
// some acked watermark would be missing from the journal.
func TestAckImpliesDurableAtEveryWatermark(t *testing.T) {
	store, rep := loadFixture(t)
	dir := t.TempDir()
	s := newReplNode(t, store, rep, Config{ReplicationDir: dir, ReplicationSync: true})

	const writers, perWriter = 8, 4
	acked := make([][]uint64, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				res, err := s.Ingest(ingestLine)
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				acked[w] = append(acked[w], res.Watermark)
			}
		}(w)
	}
	wg.Wait()
	// The server is now abandoned mid-flight: no CloseReplication, no
	// final sync. Everything acked must already be on disk.

	seen := make(map[uint64]bool)
	for w, wms := range acked {
		for i, wm := range wms {
			if i > 0 && wm <= wms[i-1] {
				t.Fatalf("writer %d acks not monotonic: %v", w, wms)
			}
			if seen[wm] {
				t.Fatalf("watermark %d acked twice", wm)
			}
			seen[wm] = true
		}
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("acked %d watermarks, want %d", len(seen), writers*perWriter)
	}

	journaled := make(map[uint64]bool)
	for _, wm := range walWatermarks(t, dir) {
		journaled[wm] = true
	}
	for wm := range seen {
		if !journaled[wm] {
			t.Errorf("acked watermark %d missing from the journal", wm)
		}
	}

	reborn := newReplNode(t, store, rep, Config{ReplicationDir: dir, ReplicationSync: true})
	defer reborn.CloseReplication()
	want := uint64(1 + writers*perWriter)
	if got := reborn.Watermark(); got != want {
		t.Fatalf("recovered watermark = %d, want %d", got, want)
	}
}

// TestGroupCommitAmortizesFsync pins the amortization mechanically, with
// no timing: writes staged while the committer is busy all ride the next
// leader's single fsync. The test parks the committer (holds the leader slot),
// stages four concurrent ingests, releases — and the journal must show
// four records but exactly one sync.
func TestGroupCommitAmortizesFsync(t *testing.T) {
	store, rep := loadFixture(t)
	s := newReplNode(t, store, rep, Config{ReplicationDir: t.TempDir(), ReplicationSync: true})
	defer s.CloseReplication()

	const n = 4
	s.commitSem <- struct{}{}
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := s.Ingest(ingestLine)
			errs <- err
		}()
	}
	waitStaged(t, s, n)
	<-s.commitSem
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	wst, err := s.replHandle().Stat()
	if err != nil {
		t.Fatal(err)
	}
	if wst.Records != n {
		t.Fatalf("journal records = %d, want %d", wst.Records, n)
	}
	if wst.Syncs != 1 {
		t.Fatalf("journal syncs = %d, want 1 (one fsync covering the whole group)", wst.Syncs)
	}
	if got := s.Watermark(); got != uint64(1+n) {
		t.Fatalf("watermark = %d, want %d", got, 1+n)
	}
}

// waitStaged blocks until the commit queue holds want entries.
func waitStaged(t *testing.T, s *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s.stagedDepth() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("staged depth %d not reached within 10s (at %d)", want, s.stagedDepth())
}

// TestGroupAbortFailsWholeGroup: when the fsync covering a group fails,
// every write in the group must be refused with ErrJournal, the
// watermark must not move for any of them, and the writer role must
// fail-stop — group commit must never ack a subset of a group whose
// durability is unknown. Also pins the observability: /healthz reports
// journal_failed and /metrics carries the sync/group histograms.
func TestGroupAbortFailsWholeGroup(t *testing.T) {
	store, rep := loadFixture(t)
	s := newReplNode(t, store, rep, Config{ReplicationDir: t.TempDir(), ReplicationSync: true})
	defer s.CloseReplication()

	// One clean ingest first: watermark 2, one successful group behind us.
	if _, err := s.Ingest(ingestLine); err != nil {
		t.Fatal(err)
	}
	wm := s.Watermark()

	const n = 2
	s.commitSem <- struct{}{}
	s.testSyncHook = func() error { return errors.New("injected fsync failure") }
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := s.Ingest(ingestLine)
			errs <- err
		}()
	}
	waitStaged(t, s, n)
	<-s.commitSem
	for i := 0; i < n; i++ {
		if err := <-errs; !errors.Is(err, ErrJournal) {
			t.Fatalf("group member error = %v, want ErrJournal", err)
		}
	}
	if got := s.Watermark(); got != wm {
		t.Fatalf("watermark advanced to %d on an aborted group (was %d)", got, wm)
	}
	if !s.JournalBroken() {
		t.Fatal("aborted group did not latch the fail-stop")
	}
	if _, err := s.Ingest(ingestLine); !errors.Is(err, ErrJournal) {
		t.Fatalf("ingest after abort = %v, want ErrJournal (fail-stopped)", err)
	}

	h := s.Handler()
	rec := get(t, h, "/healthz")
	if !strings.Contains(rec.Body.String(), `"journal_failed":true`) {
		t.Errorf("/healthz does not report journal_failed: %s", rec.Body.String())
	}
	mrec := get(t, h, "/metrics")
	body := mrec.Body.String()
	// Two fsync attempts observed (one clean, one injected failure); only
	// the clean one completed a group or reached the disk.
	for _, want := range []string{
		"hpcfail_journal_sync_seconds_count 2",
		"hpcfail_journal_group_size_count 1",
		"hpcfail_journal_group_size_sum 1",
		"hpcfail_wal_syncs 1",
		"hpcfail_ingest_staged 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestWritersStagedDuringFailingSyncAborted covers the writers the
// whole-group abort does NOT settle: ones that staged while the failing
// group's fsync was in flight. stageMu is free across the leader's I/O,
// so they pass the stage-time replBroken check (the latch is not set
// yet) and are not members of the failing group. The next leader must
// refuse them at drain time WITHOUT appending — journaling them onto
// the unverified WAL tail and acking would let a restart's replay
// truncation silently drop acked watermarks.
func TestWritersStagedDuringFailingSyncAborted(t *testing.T) {
	store, rep := loadFixture(t)
	s := newReplNode(t, store, rep, Config{ReplicationDir: t.TempDir(), ReplicationSync: true})
	defer s.CloseReplication()
	if _, err := s.Ingest(ingestLine); err != nil {
		t.Fatal(err)
	}
	wm := s.Watermark()

	syncing := make(chan struct{})
	release := make(chan struct{})
	var hookCalls atomic.Int32
	s.testSyncHook = func() error {
		if hookCalls.Add(1) == 1 {
			close(syncing)
			<-release
		}
		return errors.New("injected fsync failure")
	}

	// The first writer becomes leader and parks inside its failing sync.
	first := make(chan error, 1)
	go func() {
		_, err := s.Ingest(ingestLine)
		first <- err
	}()
	select {
	case <-syncing:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never reached the failing sync")
	}

	// These stage while that sync is failing: not members of the failing
	// group, and the fail-stop latch is not set yet.
	const n = 3
	late := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := s.Ingest(ingestLine)
			late <- err
		}()
	}
	waitStaged(t, s, n)
	close(release)

	if err := <-first; !errors.Is(err, ErrJournal) {
		t.Fatalf("failing-group member error = %v, want ErrJournal", err)
	}
	for i := 0; i < n; i++ {
		if err := <-late; !errors.Is(err, ErrJournal) {
			t.Fatalf("late-staged writer error = %v, want ErrJournal", err)
		}
	}
	if got := s.Watermark(); got != wm {
		t.Fatalf("watermark advanced to %d on refused writes (was %d)", got, wm)
	}
	if !s.JournalBroken() {
		t.Fatal("fail-stop not latched")
	}
	// The late writers were refused before any WAL traffic: the journal
	// holds the warmup record plus the failing group's append (its sync
	// failed after the append landed), and the injected sync ran exactly
	// once — the late group never reached AppendBatch or Sync.
	wst, err := s.replHandle().Stat()
	if err != nil {
		t.Fatal(err)
	}
	if wst.Records != 2 {
		t.Fatalf("journal records = %d, want 2 (warmup + failing group; late writers must not be appended)", wst.Records)
	}
	if got := hookCalls.Load(); got != 1 {
		t.Fatalf("sync attempted %d times, want 1 (the late group must not reach Sync)", got)
	}
}

// TestPromoteSyncDoesNotBlockReads: the fsync that makes a promotion
// durable rides the group committer, outside every read-serving lock —
// a slow disk during failover must not stall /v1/diagnose or /healthz.
// Before the lock split, Promote journaled under the same mutex the
// read path took on every request.
func TestPromoteSyncDoesNotBlockReads(t *testing.T) {
	store, rep := loadFixture(t)
	s := newReplNode(t, store, rep, Config{ReplicationDir: t.TempDir(), ReplicationSync: true})
	defer s.CloseReplication()
	if _, err := s.Ingest(ingestLine); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if rec := get(t, h, "/v1/diagnose"); rec.Code != http.StatusOK {
		t.Fatalf("warmup diagnose = %d", rec.Code)
	}

	const stall = 2 * time.Second
	syncing := make(chan struct{})
	release := make(chan struct{})
	s.commitSem <- struct{}{}
	s.testSyncHook = func() error {
		close(syncing)
		<-release
		return nil
	}
	<-s.commitSem

	promoted := make(chan error, 1)
	go func() {
		_, _, err := s.Promote()
		promoted <- err
	}()
	select {
	case <-syncing:
		// The promotion marker's group fsync is now in flight, holding
		// the leader slot and nothing else.
	case <-time.After(5 * time.Second):
		t.Fatal("promotion never reached the committer")
	}

	// Reads must complete while the promotion fsync is still in flight.
	start := time.Now()
	for _, path := range []string{"/v1/diagnose", "/healthz", "/metrics"} {
		rec := get(t, h, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s during promotion fsync = %d", path, rec.Code)
		}
	}
	if elapsed := time.Since(start); elapsed > stall/2 {
		t.Fatalf("reads took %v while the promotion fsync was in flight", elapsed)
	}
	close(release)
	if err := <-promoted; err != nil {
		t.Fatalf("promotion failed: %v", err)
	}
	if got := s.Epoch(); got != 2 {
		t.Fatalf("epoch after promotion = %d, want 2", got)
	}
}

// TestIngestLockSplitHammer runs the split write path under fire —
// concurrent ingests, diagnose queries, min_watermark waiters, a /v1/wal
// stream consumer and metrics scrapes — and checks the invariants the
// lock split must preserve: per-writer acks strictly monotonic, all acked
// watermarks unique and contiguous, the stream's entry watermarks in
// order, and the final watermark equal to the total accepted. Run under
// go test -race this is the regression net for the stageMu/commitSem/
// wmMu/snapMu split.
func TestIngestLockSplitHammer(t *testing.T) {
	store, rep := loadFixture(t)
	s := newReplNode(t, store, rep, Config{
		ReplicationDir:   t.TempDir(),
		MaxInflight:      16,
		MaxWatermarkWait: 10 * time.Second,
		SSEHeartbeat:     5 * time.Millisecond,
	})
	defer s.CloseReplication()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const writers, perWriter = 4, 25
	final := uint64(1 + writers*perWriter)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Stream consumer: entry watermarks must arrive strictly ascending.
	streamDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/wal?after=1")
		if err != nil {
			streamDone <- err
			return
		}
		defer resp.Body.Close()
		br := bufio.NewReader(resp.Body)
		last := uint64(1)
		for {
			line, err := br.ReadBytes('\n')
			if err != nil {
				streamDone <- err
				return
			}
			var f replica.Frame
			if err := json.Unmarshal(line, &f); err != nil {
				streamDone <- fmt.Errorf("decoding frame %q: %v", line, err)
				return
			}
			if f.Entry == nil {
				continue
			}
			if f.Entry.Watermark <= last {
				streamDone <- fmt.Errorf("stream watermark %d after %d", f.Entry.Watermark, last)
				return
			}
			last = f.Entry.Watermark
			if last == final {
				streamDone <- nil
				return
			}
		}
	}()

	// Read-side churn: plain diagnose, read-your-writes waits, scrapes.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				target := s.Watermark()
				rec := get(t, s.Handler(), fmt.Sprintf("/v1/diagnose?min_watermark=%d", target))
				if rec.Code != http.StatusOK && rec.Code != http.StatusTooManyRequests {
					t.Errorf("diagnose under hammer = %d: %s", rec.Code, rec.Body.String())
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			get(t, s.Handler(), "/metrics")
			get(t, s.Handler(), "/healthz")
		}
	}()

	acked := make([][]uint64, writers)
	var iwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		iwg.Add(1)
		go func(w int) {
			defer iwg.Done()
			for i := 0; i < perWriter; i++ {
				res, err := s.Ingest(ingestLine)
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				acked[w] = append(acked[w], res.Watermark)
			}
		}(w)
	}
	iwg.Wait()
	close(stop)
	wg.Wait()

	seen := make(map[uint64]bool)
	for w, wms := range acked {
		for i, wm := range wms {
			if i > 0 && wm <= wms[i-1] {
				t.Fatalf("writer %d acks not monotonic: %v", w, wms)
			}
			seen[wm] = true
		}
	}
	for wm := uint64(2); wm <= final; wm++ {
		if !seen[wm] {
			t.Fatalf("watermark %d never acked", wm)
		}
	}
	if got := s.Watermark(); got != final {
		t.Fatalf("final watermark = %d, want %d", got, final)
	}
	select {
	case err := <-streamDone:
		if err != nil {
			t.Fatalf("/v1/wal stream: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("/v1/wal stream never reached the final watermark")
	}

	// A read-your-writes query at the final watermark serves immediately.
	rec := get(t, s.Handler(), fmt.Sprintf("/v1/diagnose?min_watermark=%d", final))
	if rec.Code != http.StatusOK {
		t.Fatalf("final min_watermark read = %d", rec.Code)
	}
}
