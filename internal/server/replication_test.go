package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"hpcfail/internal/logstore"
	"hpcfail/internal/replica"
	"hpcfail/internal/topology"
)

// replSteps is the failover ingest script: the golden-parity script's
// shape — a benign burst, a terminal failure with its job, out-of-order
// and duplicate arrivals, and a quarantined line — so the differential
// harness exercises every ledger path the replication entry must carry.
func replSteps() [][]IngestBatch {
	return [][]IngestBatch{
		{{Stream: "console", Lines: []string{
			"2015-03-03T08:00:00.000000Z c0-0c0s0n0 kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)",
		}}},
		{
			{Stream: "scheduler", Lines: []string{
				"2015-03-03T08:10:00.000000Z slurmctld: JobId=901 Action=job_start App=qa_probe User=user01 ReqMem=64M NodeList=c0-0c1s2n1",
				"2015-03-03T08:45:00.000000Z slurmctld: JobId=901 Action=job_end App=qa_probe State=NODE_FAIL ExitCode=1 NodeList=c0-0c1s2n1",
			}},
			{Stream: "console", Lines: []string{
				"2015-03-03T08:30:00.000000Z c0-0c1s2n1 kernel: <2> node c0-0c1s2n1 halting: system shutdown",
			}},
		},
		{
			{Stream: "consumer", Lines: []string{
				"2015-03-03T08:31:00.000000Z c0-0c1s2n1 consumer: <6> node state transition for c0-0c1s2n1 state=down",
				"2015-03-02T12:00:00.000000Z c0-0c0s0n0 consumer: <6> node state transition for c0-0c0s0n0 state=up",
			}},
			{Stream: "console", Lines: []string{
				"2015-03-03T08:00:00.000000Z c0-0c0s0n0 kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)",
			}},
		},
		{{Stream: "console", Lines: []string{"not a log line at all"}}},
	}
}

// loadFixture loads the clean corpus the replication tests bootstrap
// every node from (primary and replica must share one bootstrap).
func loadFixture(t testing.TB) (*logstore.Store, *logstore.IngestReport) {
	t.Helper()
	store, rep, err := logstore.LoadDirReport(fixtureClean, topology.SchedulerSlurm)
	if err != nil {
		t.Fatal(err)
	}
	return store, rep
}

// newReplNode builds a seeded server with its replication WAL open.
func newReplNode(t testing.TB, store *logstore.Store, rep *logstore.IngestReport, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	s.Seed(store, rep)
	if err := s.OpenReplicationLog(); err != nil {
		t.Fatal(err)
	}
	return s
}

// fastTailCfg points a tailer at primary, resuming from the replica's
// own position, with test-speed knobs (no backoff sleeps, 1ms polls).
func fastTailCfg(primary string, s *Server) replica.Config {
	return replica.Config{
		Primary:       primary,
		After:         s.Watermark(),
		Epoch:         s.Epoch(),
		SeedWatermark: s.SeedWatermark(),
		BackoffBase:   -1,
		PollInterval:  time.Millisecond,
	}
}

// tailRun is a running tailer plus its lifecycle handles.
type tailRun struct {
	tl     *replica.Tailer
	cancel context.CancelFunc
	done   chan error
}

func startTailer(cfg replica.Config, apply func(replica.Entry) error) *tailRun {
	ctx, cancel := context.WithCancel(context.Background())
	tl := replica.NewTailer(cfg, apply)
	done := make(chan error, 1)
	go func() { done <- tl.Run(ctx) }()
	return &tailRun{tl: tl, cancel: cancel, done: done}
}

func (tr *tailRun) stop(t testing.TB) error {
	t.Helper()
	tr.cancel()
	select {
	case err := <-tr.done:
		return err
	case <-time.After(10 * time.Second):
		t.Fatal("tailer did not stop within 10s")
		return nil
	}
}

func waitWatermarkAtLeast(t testing.TB, s *Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s.Watermark() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("watermark %d not reached within 10s (at %d)", want, s.Watermark())
}

func diagnoseBytes(t testing.TB, s *Server, query string) []byte {
	t.Helper()
	rec := get(t, s.Handler(), "/v1/diagnose"+query)
	if rec.Code != http.StatusOK {
		t.Fatalf("diagnose%s = %d: %s", query, rec.Code, rec.Body.String())
	}
	return append([]byte(nil), rec.Body.Bytes()...)
}

// TestFailoverByteParityAtEveryPrefix is the differential failover
// harness: for every WAL prefix k the primary is killed after its k-th
// post-seed ingest, the tailing replica is promoted, and the remaining
// requests are ingested into the promoted node. The promoted node's
// /v1/diagnose bytes — text and JSON — must equal an uninterrupted
// run's at the same watermark, and so must a crash-restart of the
// promoted node rebuilt purely from its own journal (promotion epoch
// included). Runs at GOMAXPROCS 1, 2 and 8; go test -race covers the
// tail/kill/promote interleavings.
func TestFailoverByteParityAtEveryPrefix(t *testing.T) {
	store, rep := loadFixture(t)
	steps := replSteps()
	final := uint64(1 + len(steps))

	// The uninterrupted reference run: no replication, no failover.
	ref := New(Config{})
	ref.Seed(store, rep)
	for _, batches := range steps {
		if _, err := ref.Ingest(batches); err != nil {
			t.Fatal(err)
		}
	}
	wantTxt := diagnoseBytes(t, ref, "")
	wantJS := diagnoseBytes(t, ref, "?format=json")

	for _, gmp := range []int{1, 2, 8} {
		for k := 0; k <= len(steps); k++ {
			t.Run(fmt.Sprintf("gomaxprocs=%d/kill_after=%d", gmp, k), func(t *testing.T) {
				old := runtime.GOMAXPROCS(gmp)
				defer runtime.GOMAXPROCS(old)

				primary := newReplNode(t, store, rep, Config{ReplicationDir: t.TempDir()})
				ts := httptest.NewServer(primary.Handler())
				defer ts.Close()
				repDir := t.TempDir()
				sec := newReplNode(t, store, rep, Config{ReplicationDir: repDir})
				sec.SetReadOnly(true)
				run := startTailer(fastTailCfg(ts.URL, sec), sec.Apply)

				for _, batches := range steps[:k] {
					if _, err := primary.Ingest(batches); err != nil {
						t.Fatal(err)
					}
				}
				waitWatermarkAtLeast(t, sec, uint64(1+k))

				// Kill the primary and fail over.
				if err := run.stop(t); err != nil {
					t.Fatalf("tailer: %v", err)
				}
				primary.BeginDrain()
				ts.Close()
				if err := primary.CloseReplication(); err != nil {
					t.Fatal(err)
				}

				epoch, wm, err := sec.Promote()
				if err != nil {
					t.Fatal(err)
				}
				if epoch != 2 || wm != uint64(1+k) {
					t.Fatalf("Promote = epoch %d wm %d, want epoch 2 wm %d", epoch, wm, 1+k)
				}
				if sec.ReadOnly() {
					t.Fatal("promoted node still read-only")
				}
				for _, batches := range steps[k:] {
					if _, err := sec.Ingest(batches); err != nil {
						t.Fatal(err)
					}
				}
				if got := sec.Watermark(); got != final {
					t.Fatalf("promoted watermark = %d, want %d", got, final)
				}
				if got := diagnoseBytes(t, sec, ""); !bytes.Equal(got, wantTxt) {
					t.Errorf("promoted text bytes diverge from uninterrupted run (%d vs %d bytes)", len(got), len(wantTxt))
				}
				if got := diagnoseBytes(t, sec, "?format=json"); !bytes.Equal(got, wantJS) {
					t.Errorf("promoted JSON bytes diverge from uninterrupted run")
				}

				// Crash-restart of the promoted node: replaying its own
				// journal must reconstruct identical state.
				if err := sec.CloseReplication(); err != nil {
					t.Fatal(err)
				}
				reborn := newReplNode(t, store, rep, Config{ReplicationDir: repDir})
				defer reborn.CloseReplication()
				if got := reborn.Watermark(); got != final {
					t.Fatalf("restarted watermark = %d, want %d", got, final)
				}
				if got := reborn.Epoch(); got != 2 {
					t.Fatalf("restarted epoch = %d, want 2 (promotion marker lost)", got)
				}
				if got := diagnoseBytes(t, reborn, ""); !bytes.Equal(got, wantTxt) {
					t.Errorf("restarted text bytes diverge from uninterrupted run")
				}
			})
		}
	}
}

// TestReadYourWritesUnderLag pins the min_watermark contract: a client
// that ingests at the primary and reads the replica with its acked
// watermark always sees its own write, even when every entry reaches
// the replica a beat late. The never-replicated case must 412 with a
// pointer at the primary, and replica ingest must 421.
func TestReadYourWritesUnderLag(t *testing.T) {
	store, rep := loadFixture(t)
	primary := newReplNode(t, store, rep, Config{ReplicationDir: t.TempDir()})
	defer primary.CloseReplication()
	sec := New(Config{MaxWatermarkWait: 5 * time.Second, PrimaryURL: "http://primary.test"})
	sec.Seed(store, rep)
	sec.SetReadOnly(true)
	h := sec.Handler()

	for i := 0; i < 12; i++ {
		batches := []IngestBatch{{Stream: "console", Lines: []string{
			fmt.Sprintf("2015-03-03T09:%02d:00.000000Z c0-0c0s0n0 kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)", i),
		}}}
		ires, err := primary.Ingest(batches)
		if err != nil {
			t.Fatal(err)
		}
		// Lag injection: the entry lands on the replica only after the
		// primary has acknowledged it and the read is already waiting.
		applied := make(chan struct{})
		go func(e replica.Entry, delay time.Duration) {
			defer close(applied)
			time.Sleep(delay)
			if err := sec.Apply(e); err != nil {
				t.Error(err)
			}
		}(replica.Entry{Epoch: 1, Watermark: ires.Watermark, Batches: batches},
			time.Duration(1+i%7)*time.Millisecond)

		rec := get(t, h, "/v1/diagnose?min_watermark="+strconv.FormatUint(ires.Watermark, 10))
		if rec.Code != http.StatusOK {
			t.Fatalf("read at min_watermark %d = %d: %s", ires.Watermark, rec.Code, rec.Body.String())
		}
		served, err := strconv.ParseUint(rec.Header().Get("X-Hpcfail-Watermark"), 10, 64)
		if err != nil || served < ires.Watermark {
			t.Fatalf("read-your-writes violated: acked %d, served %q", ires.Watermark, rec.Header().Get("X-Hpcfail-Watermark"))
		}
		<-applied
	}

	// A watermark that never replicates: bounded wait, then 412 and a
	// redirect at the primary, reporting how far this replica got.
	lagged := New(Config{MaxWatermarkWait: 30 * time.Millisecond, PrimaryURL: "http://primary.test"})
	lagged.Seed(store, rep)
	lagged.SetReadOnly(true)
	rec := get(t, lagged.Handler(), "/v1/diagnose?min_watermark=99")
	if rec.Code != http.StatusPreconditionFailed {
		t.Fatalf("unreplicated min_watermark = %d, want 412", rec.Code)
	}
	if got := rec.Header().Get("X-Hpcfail-Primary"); got != "http://primary.test" {
		t.Errorf("412 X-Hpcfail-Primary = %q", got)
	}
	if got := rec.Header().Get("X-Hpcfail-Watermark"); got != "1" {
		t.Errorf("412 X-Hpcfail-Watermark = %q, want 1", got)
	}

	// Writes to a replica are misdirected, with the same redirect.
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest",
		strings.NewReader(`{"batches":[{"stream":"console","lines":["x"]}]}`))
	rr := httptest.NewRecorder()
	lagged.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusMisdirectedRequest {
		t.Fatalf("replica ingest = %d, want 421", rr.Code)
	}
	if got := rr.Header().Get("X-Hpcfail-Primary"); got != "http://primary.test" {
		t.Errorf("421 X-Hpcfail-Primary = %q", got)
	}
}

// TestSplitBrainFencing promotes the replica while the deposed primary
// keeps accepting writes. The promoted node must reject the stale
// epoch's entries on both admission paths — direct Apply and a tailer
// pointed back at the deposed primary — and its corpus must not move.
func TestSplitBrainFencing(t *testing.T) {
	store, rep := loadFixture(t)
	steps := replSteps()
	primary := newReplNode(t, store, rep, Config{ReplicationDir: t.TempDir()})
	defer primary.CloseReplication()
	ts := httptest.NewServer(primary.Handler())
	defer ts.Close()
	sec := newReplNode(t, store, rep, Config{ReplicationDir: t.TempDir()})
	defer sec.CloseReplication()
	sec.SetReadOnly(true)
	run := startTailer(fastTailCfg(ts.URL, sec), sec.Apply)

	for _, batches := range steps[:2] {
		if _, err := primary.Ingest(batches); err != nil {
			t.Fatal(err)
		}
	}
	waitWatermarkAtLeast(t, sec, 3)
	if err := run.stop(t); err != nil {
		t.Fatalf("tailer: %v", err)
	}

	if _, _, err := sec.Promote(); err != nil {
		t.Fatal(err)
	}
	// The deposed primary doesn't know and keeps writing its own fork.
	for _, batches := range steps[2:] {
		if _, err := primary.Ingest(batches); err != nil {
			t.Fatal(err)
		}
	}
	before := diagnoseBytes(t, sec, "")

	// Apply path: a stale-epoch entry is an ErrFenced rejection.
	err := sec.Apply(replica.Entry{Epoch: 1, Watermark: 4,
		Batches: []replica.Batch{{Stream: "console", Lines: []string{"split-brain write"}}}})
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("Apply from deposed epoch = %v, want ErrFenced", err)
	}
	if got := sec.counter(mReplFenced); got != 1 {
		t.Errorf("fenced counter = %d, want 1", got)
	}

	// Tailer path: re-pointed at the deposed primary, its fork is fenced
	// entry by entry, never applied.
	run2 := startTailer(fastTailCfg(ts.URL, sec), sec.Apply)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && run2.tl.Status().Fenced < uint64(len(steps)-2) {
		time.Sleep(time.Millisecond)
	}
	if got := run2.tl.Status().Fenced; got != uint64(len(steps)-2) {
		t.Errorf("tailer fenced %d entries, want %d", got, len(steps)-2)
	}
	if err := run2.stop(t); err != nil {
		t.Fatalf("tailer against deposed primary: %v", err)
	}
	if got := sec.Watermark(); got != 3 {
		t.Fatalf("promoted watermark moved to %d under split brain", got)
	}
	if got := diagnoseBytes(t, sec, ""); !bytes.Equal(got, before) {
		t.Error("promoted node's diagnosis changed under split-brain writes")
	}
}

// TestJournalFailureFailStopsWrites: a journal Append failure must not
// only refuse that ingest (watermark unmoved) — it must fail-stop the
// writer role. If the server kept journaling, a ghost frame at the
// failed watermark could sit on disk unacknowledged and the next
// accepted ingest would journal a second entry at the same watermark,
// silently diverging replay and replicas from the acked history.
func TestJournalFailureFailStopsWrites(t *testing.T) {
	store, rep := loadFixture(t)
	dir := t.TempDir()
	// SegmentBytes 1 forces a rotation on every append, so the fault
	// below fires on the next journal write.
	s := newReplNode(t, store, rep, Config{ReplicationDir: dir, ReplicationSegmentBytes: 1})
	defer s.CloseReplication()
	batches := []IngestBatch{{Stream: "console", Lines: []string{
		"2015-03-03T08:00:00.000000Z c0-0c0s0n0 kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)",
	}}}
	if _, err := s.Ingest(batches); err != nil {
		t.Fatal(err)
	}
	wm := s.Watermark()

	// A directory squatting on the next segment name makes the rotation
	// fail with EISDIR — an injection that works for any uid, unlike
	// permission bits.
	blocker := filepath.Join(dir, "wal-00000002.seg")
	if err := os.Mkdir(blocker, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(batches); !errors.Is(err, ErrJournal) {
		t.Fatalf("Ingest with broken WAL = %v, want ErrJournal", err)
	}
	if got := s.Watermark(); got != wm {
		t.Fatalf("watermark advanced to %d on a failed journal write", got)
	}
	if !s.JournalBroken() {
		t.Fatal("journal failure did not latch the fail-stop")
	}

	// Healing the fault is not enough: the WAL tail is unverified, so
	// the writer stays fail-stopped until a restart re-opens the log.
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(batches); !errors.Is(err, ErrJournal) {
		t.Fatalf("Ingest after fault healed = %v, want ErrJournal (fail-stopped)", err)
	}
	if got := s.Watermark(); got != wm {
		t.Fatalf("fail-stopped watermark moved to %d", got)
	}

	// A restart re-opens the log (scanning and truncating the tail) and
	// recovers exactly the acknowledged history.
	if err := s.CloseReplication(); err != nil {
		t.Fatal(err)
	}
	reborn := newReplNode(t, store, rep, Config{ReplicationDir: dir, ReplicationSegmentBytes: 1})
	defer reborn.CloseReplication()
	if got := reborn.Watermark(); got != wm {
		t.Fatalf("restarted watermark = %d, want %d", got, wm)
	}
	if _, err := reborn.Ingest(batches); err != nil {
		t.Fatalf("restarted node refused a clean ingest: %v", err)
	}
}

// TestReplicationManifestPinsBootstrap: the WAL manifest written at
// OpenReplicationLog refuses a node with a different bootstrap
// identity, instead of silently replaying history journaled over a
// corpus this node never seeded.
func TestReplicationManifestPinsBootstrap(t *testing.T) {
	store, rep := loadFixture(t)
	dir := t.TempDir()
	prim := newReplNode(t, store, rep, Config{ReplicationDir: dir})
	if err := prim.CloseReplication(); err != nil {
		t.Fatal(err)
	}

	// An unseeded node (seed watermark 0) opening the same WAL must be
	// refused at open.
	other := New(Config{ReplicationDir: dir})
	if err := other.OpenReplicationLog(); err == nil {
		other.CloseReplication()
		t.Fatal("OpenReplicationLog accepted a WAL journaled over a different bootstrap")
	}

	// The matching bootstrap reopens cleanly.
	again := newReplNode(t, store, rep, Config{ReplicationDir: dir})
	if err := again.CloseReplication(); err != nil {
		t.Fatal(err)
	}
}

// TestParkedWatermarkReadsDontStarve: a min_watermark read that must
// park releases its admission slot while parked, so a burst of
// read-your-writes requests against a lagging replica cannot occupy
// every MaxInflight slot and shed unrelated diagnose traffic.
func TestParkedWatermarkReadsDontStarve(t *testing.T) {
	store, rep := loadFixture(t)
	s := New(Config{MaxInflight: 1, MaxWatermarkWait: 10 * time.Second})
	s.Seed(store, rep)
	h := s.Handler()

	parked := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/diagnose?min_watermark=99", nil))
		parked <- rec
	}()
	// Give the reader time to start, acquire the slot and park; parking
	// hands the slot back, so the semaphore drains to empty and stays
	// there for the whole wait.
	time.Sleep(50 * time.Millisecond)
	if n := len(s.sem); n != 0 {
		t.Fatalf("parked min_watermark read still holds %d admission slot(s)", n)
	}

	// With the waiter parked, the single slot serves unrelated reads.
	rec := get(t, h, "/v1/diagnose")
	if rec.Code != http.StatusOK {
		t.Fatalf("read while a waiter parks = %d, want 200: %s", rec.Code, rec.Body.String())
	}

	// A second reader parks for a watermark an ingest is about to reach:
	// the group committer's waiter bump must release it with the fresh
	// data, while the first reader (waiting on watermark 99) stays parked.
	released := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/diagnose?min_watermark=2", nil))
		released <- rec
	}()
	time.Sleep(50 * time.Millisecond)
	if _, err := s.Ingest([]IngestBatch{{Stream: "console", Lines: []string{
		"2015-03-03T08:00:00.000000Z c0-0c0s0n0 kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)",
	}}}); err != nil {
		t.Fatal(err)
	}
	select {
	case rrec := <-released:
		if rrec.Code != http.StatusOK {
			t.Fatalf("read released by ingest = %d, want 200: %s", rrec.Code, rrec.Body.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ingest did not release the parked min_watermark read")
	}

	s.BeginDrain()
	select {
	case prec := <-parked:
		if prec.Code != http.StatusServiceUnavailable {
			t.Fatalf("parked read after drain = %d, want 503", prec.Code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked read did not release on drain")
	}
}

// TestMinWatermarkWaitDrains pins the drain interaction: a parked
// min_watermark read is released with 503 + Retry-After the moment the
// server starts draining, and post-drain reads are refused at admission
// with the same hint.
func TestMinWatermarkWaitDrains(t *testing.T) {
	store, rep := loadFixture(t)
	s := New(Config{MaxWatermarkWait: 10 * time.Second, RetryAfter: 2 * time.Second})
	s.Seed(store, rep)
	h := s.Handler()

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/diagnose?min_watermark=99", nil))
		done <- rec
	}()
	time.Sleep(20 * time.Millisecond) // let the wait park
	s.BeginDrain()
	select {
	case rec := <-done:
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("draining min_watermark wait = %d, want 503", rec.Code)
		}
		if got := rec.Header().Get("Retry-After"); got != "2" {
			t.Errorf("Retry-After = %q, want 2", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("min_watermark wait did not unblock on drain")
	}

	rec := get(t, h, "/v1/diagnose?min_watermark=1")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain read = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Errorf("post-drain Retry-After = %q, want 2", got)
	}
}

// TestWALStreamDrainAndHeartbeat covers the /v1/wal stream lifecycle:
// the hello frame, heartbeat frames on an idle stream, prompt stream
// termination on BeginDrain (so http.Server.Shutdown cannot wedge on a
// tailing replica), refusal of new streams while draining, and a clean
// server close afterwards.
func TestWALStreamDrainAndHeartbeat(t *testing.T) {
	store, rep := loadFixture(t)
	s := newReplNode(t, store, rep, Config{
		ReplicationDir: t.TempDir(),
		SSEHeartbeat:   20 * time.Millisecond,
		RetryAfter:     3 * time.Second,
	})
	defer s.CloseReplication()
	ts := httptest.NewServer(s.Handler())

	resp, err := http.Get(ts.URL + "/v1/wal?after=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/wal = %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	readFrame := func() replica.Frame {
		t.Helper()
		line, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatalf("reading stream: %v", err)
		}
		var f replica.Frame
		if err := json.Unmarshal(line, &f); err != nil {
			t.Fatalf("decoding frame %q: %v", line, err)
		}
		return f
	}
	f := readFrame()
	if f.Hello == nil || f.Hello.Epoch != 1 || f.Hello.SeedWatermark != 1 || f.Hello.Watermark != 1 {
		t.Fatalf("first frame = %+v, want hello at epoch 1, seed 1, watermark 1", f)
	}
	// The idle stream heartbeats at the configured cadence.
	hb := readFrame()
	if hb.Heartbeat == nil || hb.Heartbeat.Watermark != 1 {
		t.Fatalf("second frame = %+v, want heartbeat at watermark 1", hb)
	}

	// Drain: the established stream must end promptly.
	s.BeginDrain()
	streamEnd := make(chan error, 1)
	go func() {
		for {
			if _, err := br.ReadBytes('\n'); err != nil {
				streamEnd <- err
				return
			}
		}
	}()
	select {
	case err := <-streamEnd:
		if err != io.EOF && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Logf("stream ended with %v (EOF-equivalent accepted)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("/v1/wal stream did not close on drain")
	}

	// New streams are refused while draining, with a retry hint.
	resp2, err := http.Get(ts.URL + "/v1/wal")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /v1/wal = %d, want 503", resp2.StatusCode)
	}
	if got := resp2.Header.Get("Retry-After"); got != "3" {
		t.Errorf("draining /v1/wal Retry-After = %q, want 3", got)
	}

	// The server shuts down without wedging on the (now closed) stream.
	closed := make(chan struct{})
	go func() {
		ts.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("server shutdown wedged after drain")
	}
}

// TestAlarmStreamPreambleAndHeartbeat is the SSE regression test for
// the configurable heartbeat: the stream opens with the retry hint and
// the ": connected" comment, then pings at the configured cadence even
// with no alarms flowing.
func TestAlarmStreamPreambleAndHeartbeat(t *testing.T) {
	s := New(Config{SSEHeartbeat: 25 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.BeginDrain()

	resp, err := http.Get(ts.URL + "/v1/alarms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alarms = %d", resp.StatusCode)
	}
	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	waitForLine(t, lines, "retry:")
	waitForLine(t, lines, ": connected")
	// Two heartbeats prove the ticker runs at the configured cadence
	// rather than the 15s default (which would time the helper out).
	waitForLine(t, lines, ": ping")
	waitForLine(t, lines, ": ping")
}

// TestReplicationChaosSoak drives seeded kill/promote/restart cycles —
// random ingest mixes including quarantine-bound garbage, a random kill
// prefix, failover, then a crash-restart of the promoted node — and
// requires zero parity violations against an uninterrupted reference
// plus bounded staleness (the replica fully catches up) every round.
// The CI soak leg runs this; -short skips it.
func TestReplicationChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	store, rep := loadFixture(t)
	rnd := rand.New(rand.NewSource(20260808))
	mkBatches := func(i int) []IngestBatch {
		switch rnd.Intn(4) {
		case 0:
			return []IngestBatch{{Stream: "console", Lines: []string{
				fmt.Sprintf("2015-03-03T10:%02d:00.000000Z c0-0c0s0n0 kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)", i%60),
			}}}
		case 1:
			return []IngestBatch{{Stream: "scheduler", Lines: []string{
				fmt.Sprintf("2015-03-03T11:%02d:00.000000Z slurmctld: JobId=%d Action=job_start App=chaos User=user02 ReqMem=64M NodeList=c0-0c1s2n1", i%60, 1000+i),
				fmt.Sprintf("2015-03-03T11:%02d:30.000000Z slurmctld: JobId=%d Action=job_end App=chaos State=NODE_FAIL ExitCode=1 NodeList=c0-0c1s2n1", i%60, 1000+i),
			}}}
		case 2:
			// Damaged input: quarantined on primary and replica alike.
			return []IngestBatch{{Stream: "console", Lines: []string{
				fmt.Sprintf("chaos garbage %d \x01\x02 not parseable", i),
			}}}
		default:
			return []IngestBatch{{Stream: "consumer", Lines: []string{
				fmt.Sprintf("2015-03-03T12:%02d:00.000000Z c0-0c1s2n1 consumer: <6> node state transition for c0-0c1s2n1 state=down", i%60),
			}}}
		}
	}

	for round := 0; round < 5; round++ {
		n := 4 + rnd.Intn(4)
		k := rnd.Intn(n + 1)
		script := make([][]IngestBatch, n)
		for i := range script {
			script[i] = mkBatches(round*100 + i)
		}
		t.Run(fmt.Sprintf("round=%d_n=%d_kill=%d", round, n, k), func(t *testing.T) {
			// The uninterrupted reference for this round's script.
			ref := New(Config{})
			ref.Seed(store, rep)
			for _, batches := range script {
				if _, err := ref.Ingest(batches); err != nil {
					t.Fatal(err)
				}
			}
			want := diagnoseBytes(t, ref, "")

			primary := newReplNode(t, store, rep, Config{ReplicationDir: t.TempDir()})
			ts := httptest.NewServer(primary.Handler())
			defer ts.Close()
			repDir := t.TempDir()
			sec := newReplNode(t, store, rep, Config{ReplicationDir: repDir})
			sec.SetReadOnly(true)
			run := startTailer(fastTailCfg(ts.URL, sec), sec.Apply)

			for _, batches := range script[:k] {
				if _, err := primary.Ingest(batches); err != nil {
					t.Fatal(err)
				}
			}
			waitWatermarkAtLeast(t, sec, uint64(1+k))
			// Bounded staleness: a healthy replica's lag returns to zero.
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) && run.tl.Status().Lag() != 0 {
				time.Sleep(time.Millisecond)
			}
			if lag := run.tl.Status().Lag(); lag != 0 {
				t.Fatalf("replica lag %d after catch-up window", lag)
			}

			if err := run.stop(t); err != nil {
				t.Fatalf("tailer: %v", err)
			}
			primary.BeginDrain()
			ts.Close()
			primary.CloseReplication()

			if _, _, err := sec.Promote(); err != nil {
				t.Fatal(err)
			}
			for _, batches := range script[k:] {
				if _, err := sec.Ingest(batches); err != nil {
					t.Fatal(err)
				}
			}
			if got := diagnoseBytes(t, sec, ""); !bytes.Equal(got, want) {
				t.Errorf("parity violation after failover (round %d, kill %d)", round, k)
			}

			// Crash the promoted node and rebuild it from its journal.
			if err := sec.CloseReplication(); err != nil {
				t.Fatal(err)
			}
			reborn := newReplNode(t, store, rep, Config{ReplicationDir: repDir})
			defer reborn.CloseReplication()
			if got := diagnoseBytes(t, reborn, ""); !bytes.Equal(got, want) {
				t.Errorf("parity violation after crash-restart (round %d, kill %d)", round, k)
			}
			if got := reborn.Epoch(); got != 2 {
				t.Errorf("restarted epoch = %d, want 2", got)
			}
		})
	}
}

// BenchmarkReplicaApply measures the replica-side fold of one
// replicated entry — parse, ledger merge, watermark commit — the
// per-entry cost of tailing a primary (no journal, no fsync).
func BenchmarkReplicaApply(b *testing.B) {
	store, rep := loadFixture(b)
	line := "2015-03-03T08:00:00.000000Z c0-0c0s0n0 kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)"
	var s *Server
	var wm uint64
	reset := func() {
		s = New(Config{})
		s.Seed(store, rep)
		wm = 1
	}
	reset()
	apply := func() {
		wm++
		if err := s.Apply(replica.Entry{Epoch: 1, Watermark: wm,
			Batches: []replica.Batch{{Stream: "console", Lines: []string{line}}}}); err != nil {
			b.Fatal(err)
		}
	}
	apply() // warm the pending slice so 1-iteration runs measure steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%65536 == 0 {
			b.StopTimer()
			reset()
			apply()
			b.StartTimer()
		}
		apply()
	}
}

// BenchmarkIngestJournaled measures the primary-side journal-then-
// commit ingest with the replication WAL open (no fsync) — the write
// amplification replication adds to the hot ingest path.
func BenchmarkIngestJournaled(b *testing.B) {
	store, rep := loadFixture(b)
	line := "2015-03-03T08:00:00.000000Z c0-0c0s0n0 kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)"
	batches := []IngestBatch{{Stream: "console", Lines: []string{line}}}
	var s *Server
	reset := func() {
		s = New(Config{ReplicationDir: b.TempDir()})
		s.Seed(store, rep)
		if err := s.OpenReplicationLog(); err != nil {
			b.Fatal(err)
		}
	}
	reset()
	ingest := func() {
		if _, err := s.Ingest(batches); err != nil {
			b.Fatal(err)
		}
	}
	ingest() // warm the WAL segment and pending slice
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%65536 == 0 {
			b.StopTimer()
			s.CloseReplication()
			reset()
			ingest()
			b.StartTimer()
		}
		ingest()
	}
	b.StopTimer()
	s.CloseReplication()
}
