package server

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"hpcfail/internal/events"
	"hpcfail/internal/logparse"
	"hpcfail/internal/replica"
	"hpcfail/internal/wal"
)

// Group commit. Every write — an HTTP ingest, a replicated entry from
// the tailer, a promotion's epoch marker — goes through the same two
// steps:
//
//  1. stage: under stageMu (held for pointer pushes, never across I/O)
//     the write is validated, assigned its watermark, its WAL payload
//     is finalized, and it is parked on the staged queue.
//  2. commit: the writer calls commitStaged, which loops trying to
//     become the leader (acquire commitSem). The leader drains the
//     whole staged queue as one group: a single AppendBatch run, a
//     single Sync covering every entry, then state commit in stage
//     order — pending records, ledger merges, the watermark store —
//     one waiter bump, and finally the acks. Watcher feeds run on the
//     submitters' goroutines after the ack, outside every lock here.
//
// While a leader is fsyncing, every new write simply stages and blocks;
// the next leader finds them all and amortizes its one fsync across the
// lot. That turns the serialized journal bottleneck (throughput ≤
// 1/fsync-latency) into near-linear scaling with in-flight writers,
// without a background goroutine to supervise: the committer role is
// carried by whichever staged writer wins the lock, so there is nothing
// to start, drain or leak.
//
// Invariants preserved from the serialized path:
//
//   - Ack implies durable: an entry's done channel closes only after
//     the Sync covering it returned, so an acknowledged watermark is
//     always on disk.
//   - Order: watermarks are assigned in stage order and committed in
//     stage order, so the WAL byte order and the pending-delta order
//     both equal watermark order — exactly what byte-identical
//     replication parity requires. (Watcher feeds from concurrent
//     ingesters may interleave, as they always did; the watcher's
//     reorder buffer absorbs that, and a replica's tailer applies
//     serially so its feeds stay in watermark order.)
//   - Fail-stop: a failed AppendBatch or Sync latches replBroken under
//     stageMu; every entry in the failed group — and anything staged
//     after it — is refused with ErrJournal and no watermark moves.
//     Writes that staged DURING the failing I/O (stageMu is free across
//     it, so they pass the stage-time check and are not members of the
//     failed group) are caught by the next leader's drain-time re-check
//     of the latch, before any append.
//
// Lock hierarchy (acquire strictly downward; every lock below the
// commitSem leader slot is held only for short critical sections,
// never across I/O):
//
//	commitSem → stageMu
//	commitSem → s.mu
//	engMu → snapMu, engMu → s.mu
//	wmMu, snapMu, metrics.mu: leaves
type staged struct {
	// e is the entry being committed. For non-replicated servers only
	// Epoch/Watermark (and len(Batches) for metrics) are meaningful.
	e replica.Entry
	// encoded is the framed-ready WAL payload (nil when replication is
	// off); the buffer is pool-recycled by the leader after the append.
	encoded []byte
	// Parsed state to commit: the records entering the corpus, the
	// per-stream ledger deltas, the quarantined-line count.
	recs  []events.Record
	sreps []logparse.StreamReport
	quar  int
	// marker entries (promotion epoch markers) reuse the current
	// watermark: they are journaled and bump waiters but do not advance
	// the watermark or feed the watcher.
	marker bool
	// applied marks entries that arrived through Apply (tailer/replay)
	// for the replication counter.
	applied bool
	// err is the group outcome, settled by the leader before done is
	// closed; the submitter reads it only after <-done.
	err  error
	done chan struct{}
}

// entryBufPool recycles entry-encoding buffers between stage and the
// leader's append. Oversized buffers (a huge ingest body) are dropped
// rather than pinned.
var entryBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

const maxPooledEntryBuf = 1 << 20

func getEntryBuf() []byte {
	bp := entryBufPool.Get().(*[]byte)
	return (*bp)[:0]
}

func putEntryBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledEntryBuf {
		return
	}
	entryBufPool.Put(&b)
}

// errJournalBroken is the fail-stop refusal for writes after a journal
// failure.
func errJournalBroken() error {
	return fmt.Errorf("%w: an earlier write left the WAL tail unverified; writes are fail-stopped until restart", ErrJournal)
}

// stageIngest assigns the next watermark to one parsed ingest request
// and parks it on the commit queue. The watermark-independent batches
// suffix is encoded before the lock; inside it the work is an integer
// render plus a memcpy.
func (s *Server) stageIngest(batches []replica.Batch, recs []events.Record, sreps []logparse.StreamReport, quar int) (*staged, error) {
	var suffix []byte
	if s.replOpen() {
		suffix = replica.AppendEntryBatches(getEntryBuf(), batches)
	}
	st := &staged{recs: recs, sreps: sreps, quar: quar, done: make(chan struct{})}

	s.stageMu.Lock()
	if s.repl != nil {
		if s.replBroken {
			s.stageMu.Unlock()
			putEntryBuf(suffix)
			return nil, errJournalBroken()
		}
		if suffix == nil {
			// Replication raced on between the check above and the lock;
			// encode inline — rare, correctness over the fast path.
			suffix = replica.AppendEntryBatches(getEntryBuf(), batches)
		}
		epoch := s.epoch.Load()
		wm := s.stageWM + 1
		buf := replica.AppendEntryHead(getEntryBuf(), epoch, wm)
		st.encoded = append(buf, suffix...)
		st.e = replica.Entry{Epoch: epoch, Watermark: wm, Batches: batches}
		s.stageWM = wm
	} else {
		s.stageWM++
		st.e = replica.Entry{Epoch: s.epoch.Load(), Watermark: s.stageWM, Batches: batches}
	}
	s.stageQ = append(s.stageQ, st)
	s.stageMu.Unlock()
	putEntryBuf(suffix)
	return st, nil
}

// stageEntry validates one replicated entry against the epoch fence and
// the watermark sequence and parks it on the commit queue. It returns
// (nil, nil) for duplicates needing no work, or a marker staged when a
// duplicate carries a newer epoch that must be journaled locally (a
// promotion arriving over the wire).
func (s *Server) stageEntry(e replica.Entry, recs []events.Record, sreps []logparse.StreamReport, quar int) (*staged, error) {
	var encoded []byte
	if s.replOpen() {
		b, err := replica.AppendEntry(getEntryBuf(), e)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrJournal, err)
		}
		encoded = b
	}

	s.stageMu.Lock()
	cur := s.epoch.Load()
	if e.Epoch < cur {
		s.stageMu.Unlock()
		putEntryBuf(encoded)
		s.metrics.add(mReplFenced, 1)
		return nil, fmt.Errorf("%w: entry epoch %d, server epoch %d", ErrFenced, e.Epoch, cur)
	}
	if e.Watermark <= s.stageWM {
		// Duplicate on resume; adopt a newer epoch (promotion markers
		// reuse the current watermark for exactly this). A marker that
		// advances our epoch is journaled locally too, so the promotion
		// survives this node's own crash-restart. The epoch stays bumped
		// even when journaling it fails — failing toward a higher epoch
		// can fence spuriously but never lets a deposed writer in.
		var st *staged
		if e.Epoch > cur {
			s.epoch.Store(e.Epoch)
			if s.repl != nil {
				if s.replBroken {
					s.stageMu.Unlock()
					putEntryBuf(encoded)
					return nil, errJournalBroken()
				}
				me := replica.Entry{Epoch: e.Epoch, Watermark: s.stageWM, Batches: []replica.Batch{}}
				buf, err := replica.AppendEntry(getEntryBuf(), me)
				if err != nil {
					s.stageMu.Unlock()
					putEntryBuf(encoded)
					return nil, fmt.Errorf("%w: %v", ErrJournal, err)
				}
				st = &staged{e: me, encoded: buf, marker: true, done: make(chan struct{})}
				s.stageQ = append(s.stageQ, st)
			}
		}
		s.stageMu.Unlock()
		putEntryBuf(encoded)
		return st, nil
	}
	if e.Watermark != s.stageWM+1 {
		wm := s.stageWM
		s.stageMu.Unlock()
		putEntryBuf(encoded)
		return nil, fmt.Errorf("server: entry watermark %d does not follow %d: gap", e.Watermark, wm)
	}
	if s.repl != nil {
		if s.replBroken {
			s.stageMu.Unlock()
			putEntryBuf(encoded)
			return nil, errJournalBroken()
		}
		if encoded == nil {
			b, err := replica.AppendEntry(getEntryBuf(), e)
			if err != nil {
				s.stageMu.Unlock()
				return nil, fmt.Errorf("%w: %v", ErrJournal, err)
			}
			encoded = b
		}
	} else if encoded != nil {
		putEntryBuf(encoded)
		encoded = nil
	}
	if e.Epoch > cur {
		s.epoch.Store(e.Epoch)
	}
	st := &staged{e: e, encoded: encoded, recs: recs, sreps: sreps, quar: quar, applied: true, done: make(chan struct{})}
	s.stageWM = e.Watermark
	s.stageQ = append(s.stageQ, st)
	s.stageMu.Unlock()
	return st, nil
}

// commitStaged blocks until st's group has committed (or aborted),
// taking a turn as the commit leader whenever the leader slot is free.
// Every staged entry is eventually dequeued by some leader and settled
// before its done closes, so the loop always terminates: either another
// leader carried our entry, or we become leader and carry it (and
// everything staged behind it) ourselves.
//
// The select is the load-bearing part: a writer waits on its ack and on
// leadership AT THE SAME TIME. With a plain mutex instead, every writer
// whose entry was just committed would still be queued on the lock only
// to re-check its done channel — and on a busy server the releasing
// leader re-acquires the barging mutex before those waiters run, so the
// queue never drains, writers never restage, and every group degrades
// to size one. The channel semaphore dissolves that: an ack wakes the
// writer out of the select directly, and only writers that still need a
// commit compete for the slot.
func (s *Server) commitStaged(st *staged) error {
	for {
		select {
		case <-st.done:
			return st.err
		case s.commitSem <- struct{}{}:
			s.runGroup()
			<-s.commitSem
		}
	}
}

// runGroup drains the staged queue and commits it as one group. The
// caller holds commitSem (the leader role). No-op on an empty queue.
func (s *Server) runGroup() {
	// Yield once before draining: writers that are runnable right now get
	// to stage before the cut, so the group they join shares this fsync
	// instead of paying their own. Costs ~a scheduler pass when idle;
	// with few cores it is what lets groups form at all, since stagers
	// otherwise only run while the leader is inside the fsync syscall.
	runtime.Gosched()
	s.stageMu.Lock()
	n := len(s.stageQ)
	if max := s.cfg.IngestGroupMax; max > 0 && n > max {
		n = max
	}
	if n == 0 {
		s.stageMu.Unlock()
		return
	}
	group := make([]*staged, n)
	copy(group, s.stageQ)
	rest := copy(s.stageQ, s.stageQ[n:])
	for i := rest; i < len(s.stageQ); i++ {
		s.stageQ[i] = nil // release for GC; the queue slice is reused
	}
	s.stageQ = s.stageQ[:rest]
	l := s.repl
	broken := s.replBroken
	s.stageMu.Unlock()

	if broken {
		// Drain-time re-check of the fail-stop latch. These writers staged
		// while an earlier leader's append/sync was still in flight (stageMu
		// is free across I/O), so they passed the stage-time check and were
		// not members of the failed group — its whole-group abort never
		// settled them. Appending them now would park acked frames beyond an
		// unverified (possibly torn, possibly never-synced) WAL tail, where
		// a restart's replay truncation can silently drop them: that would
		// break ack-implies-durable. Refuse the lot without touching the WAL.
		gerr := errJournalBroken()
		for _, st := range group {
			putEntryBuf(st.encoded)
			st.encoded = nil
			st.err = gerr
			close(st.done)
		}
		return
	}

	if l != nil {
		s.payloads = s.payloads[:0]
		for _, st := range group {
			// encoded is never nil here: once s.repl is open every stage
			// encodes, and OpenReplicationLog refuses to install the journal
			// over a non-empty stage queue.
			s.payloads = append(s.payloads, st.encoded)
		}
		err := l.AppendBatch(s.payloads...)
		if err == nil {
			start := time.Now()
			if s.testSyncHook != nil {
				err = s.testSyncHook()
			} else {
				err = l.Sync()
			}
			s.metrics.observeSync(time.Since(start))
		}
		for _, st := range group {
			putEntryBuf(st.encoded)
			st.encoded = nil
		}
		if err != nil {
			// Whole-group abort: the WAL tail is unverified (the append
			// may be half-written, or a written group may never have hit
			// stable storage), so nothing in this group — nor anything
			// staged after it — may commit. Latch first, so no new write
			// stages behind the wreckage, then fail every waiter.
			s.stageMu.Lock()
			s.replBroken = true
			s.stageMu.Unlock()
			gerr := fmt.Errorf("%w: %v", ErrJournal, err)
			for _, st := range group {
				st.err = gerr
				close(st.done)
			}
			return
		}
		s.metrics.observeGroup(n)
	}

	// The group is durable; commit state in stage order. The watermark
	// store stays inside s.mu so appliers draining pending deltas read a
	// consistent (pending, watermark) pair.
	s.mu.Lock()
	for _, st := range group {
		s.pending = append(s.pending, st.recs...)
		s.recCount += len(st.recs)
		for i := range st.sreps {
			s.rep.MergeStream(st.sreps[i])
		}
		if !st.marker {
			s.watermark.Store(st.e.Watermark)
		}
	}
	s.mu.Unlock()
	s.bump()

	var batches, recs, quar, appliedN uint64
	ingested := false
	for _, st := range group {
		if !st.marker {
			ingested = true
			batches += uint64(len(st.e.Batches))
			recs += uint64(len(st.recs))
			quar += uint64(st.quar)
			if st.applied {
				appliedN++
			}
		}
	}
	if ingested {
		s.lastIngestWall.Store(time.Now().UnixNano())
		s.metrics.add(mIngestBatch, batches)
		s.metrics.add(mIngestRecs, recs)
		s.metrics.add(mIngestQuar, quar)
	}
	if appliedN > 0 {
		s.metrics.add(mReplApplied, appliedN)
	}
	// Ack in stage order. Watcher feeds happen on the submitters' own
	// goroutines after the ack (as they did pre-group-commit), so the
	// leader's critical section carries no detection work.
	for _, st := range group {
		close(st.done)
	}
}

// bump wakes every watermark waiter (min_watermark reads, /v1/wal
// streamers) by closing and replacing the broadcast channel.
func (s *Server) bump() {
	s.wmMu.Lock()
	close(s.wmCh)
	s.wmCh = make(chan struct{})
	s.wmMu.Unlock()
}

// wmWait returns the current broadcast channel. Grab it BEFORE reading
// the watermark: the channel is closed after every advance, so a commit
// racing the read still closes the channel the caller parks on.
func (s *Server) wmWait() <-chan struct{} {
	s.wmMu.Lock()
	ch := s.wmCh
	s.wmMu.Unlock()
	return ch
}

// replOpen reports whether the replication journal is open.
func (s *Server) replOpen() bool {
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	return s.repl != nil
}

// replHandle returns the open journal (nil when replication is off).
func (s *Server) replHandle() *wal.Log {
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	return s.repl
}

// stagedDepth is the current commit-queue depth — writes staged but not
// yet covered by a group fsync (the hpcfail_ingest_staged gauge).
func (s *Server) stagedDepth() int {
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	return len(s.stageQ)
}
