package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hpcfail/internal/miner"
)

// opensmdLine is a well-formed internal line from a daemon no static
// profile knows: the component token is not a cname, so the parser
// quarantines the whole line and only the miner ever sees it.
func opensmdLine(i int) string {
	return fmt.Sprintf("2015-03-03T00:00:%02d.000000Z ib0 opensmd: SUBNET SWEEP complete: %d nodes in %d ms", i%60, 1600+i, 400+7*i)
}

func ingestLines(t *testing.T, s *Server, lines []string) IngestResult {
	t.Helper()
	res, err := s.Ingest([]IngestBatch{{Stream: "console", Lines: lines}})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTemplatesDisabledByDefault(t *testing.T) {
	s := seedServer(t, fixtureClean, Config{})
	rec := get(t, s.Handler(), "/v1/templates")
	if rec.Code != http.StatusOK {
		t.Fatalf("templates = %d", rec.Code)
	}
	var v templatesView
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.Enabled || len(v.Templates) != 0 {
		t.Errorf("disabled miner served %+v", v)
	}
	if body := get(t, s.Handler(), "/metrics").Body.String(); strings.Contains(body, "hpcfail_miner_templates_live") {
		t.Error("metrics export miner gauges with mining disabled")
	}
}

func TestTemplatesRejectsBadRequests(t *testing.T) {
	s := seedServer(t, fixtureClean, Config{EnableMiner: true})
	h := s.Handler()
	for _, target := range []string{
		"/v1/templates?since=nope",
		"/v1/templates?limit=-1",
		"/v1/templates?format=profile&min_count=x",
	} {
		if rec := get(t, h, target); rec.Code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", target, rec.Code)
		}
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/templates", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST templates = %d, want 405", rec.Code)
	}
}

func TestMinerFedFromIngestQuarantine(t *testing.T) {
	s := seedServer(t, fixtureClean, Config{EnableMiner: true})
	h := s.Handler()

	var lines []string
	for i := 0; i < 8; i++ {
		lines = append(lines, opensmdLine(i))
	}
	res := ingestLines(t, s, lines)
	if res.Quarantined != len(lines) {
		t.Fatalf("quarantined %d of %d unknown-daemon lines", res.Quarantined, len(lines))
	}

	rec := get(t, h, "/v1/templates")
	var v ingestTemplates
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if !v.Enabled || v.Stats.LinesMined < uint64(len(lines)) {
		t.Fatalf("templates view = %+v, want ≥%d lines mined", v, len(lines))
	}
	found := false
	for _, tv := range v.Templates {
		if strings.Contains(tv.Template, "opensmd: SUBNET SWEEP complete:") && tv.Count == uint64(len(lines)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no opensmd sweep template in %+v", v.Templates)
	}

	// Pagination: everything is older than the returned watermark, so
	// paging from it yields nothing; paging from zero with a limit
	// truncates.
	rec = get(t, h, fmt.Sprintf("/v1/templates?since=%d", v.Seq))
	var after ingestTemplates
	if err := json.Unmarshal(rec.Body.Bytes(), &after); err != nil {
		t.Fatal(err)
	}
	if len(after.Templates) != 0 {
		t.Errorf("since=%d returned %d templates, want 0", v.Seq, len(after.Templates))
	}
	rec = get(t, h, "/v1/templates?limit=1")
	var limited ingestTemplates
	if err := json.Unmarshal(rec.Body.Bytes(), &limited); err != nil {
		t.Fatal(err)
	}
	if len(limited.Templates) != 1 {
		t.Errorf("limit=1 returned %d templates", len(limited.Templates))
	}

	// Profile export round-trips through the decoder and classifies the
	// very lines it was mined from.
	rec = get(t, h, "/v1/templates?format=profile&min_count=2")
	prof, err := miner.DecodeProfile(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("profile export: %v\n%s", err, rec.Body.String())
	}
	m := miner.NewMatcher(prof)
	if m.Len() == 0 {
		t.Fatal("exported profile is empty")
	}
	if cat, ok := m.Match(opensmdLine(42)); !ok || !strings.HasPrefix(cat, "mined_") {
		t.Errorf("matcher on fresh sweep line = %q, %v", cat, ok)
	}

	body := get(t, h, "/metrics").Body.String()
	for _, want := range []string{
		"hpcfail_ingest_quarantined_total 8",
		"hpcfail_miner_lines_mined_total 8",
		"hpcfail_miner_templates_live",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output lacks %q", want)
		}
	}
}

// ingestTemplates mirrors templatesView for decoding (the production
// struct marshals fine; this keeps the test honest about JSON names).
type ingestTemplates struct {
	Enabled   bool                 `json:"enabled"`
	Seq       uint64               `json:"seq"`
	Stats     miner.Stats          `json:"stats"`
	Templates []miner.TemplateView `json:"templates"`
}

func TestCandidatePromotionSurfacesOnStreamAndMetrics(t *testing.T) {
	s := New(Config{
		EnableMiner: true,
		Miner:       miner.Config{PromoteCount: 4},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.BeginDrain()

	resp, err := http.Get(ts.URL + "/v1/alarms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			events <- sc.Text()
		}
		close(events)
	}()
	waitForLine(t, events, "retry:")

	var lines []string
	for i := 0; i < 4; i++ {
		lines = append(lines, opensmdLine(i))
	}
	ingestLines(t, s, lines)

	waitForLine(t, events, "event: candidate")
	waitForLine(t, events, `"signature":"mined_opensmd_subnet_sweep`)

	body := get(t, s.Handler(), "/metrics").Body.String()
	for _, want := range []string{
		"hpcfail_miner_promotions_total 1",
		"hpcfail_candidates_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output lacks %q", want)
		}
	}
	if st := s.watcher.Stats(); st.Candidates != 1 {
		t.Errorf("watcher candidates = %d, want 1", st.Candidates)
	}
}

// TestDiagnoseByteIdenticalWithMiner is the equivalence gate: enabling
// the miner must not change a single byte of the diagnosis report —
// mining is a side channel over lines the classifier already rejected.
func TestDiagnoseByteIdenticalWithMiner(t *testing.T) {
	for _, fixture := range []string{fixtureClean, fixtureDegraded} {
		plain := seedServer(t, fixture, Config{})
		mined := seedServer(t, fixture, Config{EnableMiner: true})
		for _, target := range []string{"/v1/diagnose", "/v1/diagnose?format=json"} {
			a := get(t, plain.Handler(), target)
			b := get(t, mined.Handler(), target)
			if a.Code != http.StatusOK || b.Code != http.StatusOK {
				t.Fatalf("%s: %d vs %d", target, a.Code, b.Code)
			}
			if a.Body.String() != b.Body.String() {
				t.Errorf("%s %s: output differs with miner enabled", fixture, target)
			}
		}
	}
}
