package server

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"hpcfail/internal/core"
	"hpcfail/internal/events"
	"hpcfail/internal/logparse"
	"hpcfail/internal/logstore"
	"hpcfail/internal/render"
	"hpcfail/internal/topology"
)

// TestDiagnoseGoldenParity is the service's output contract:
// GET /v1/diagnose over a seeded corpus returns byte-for-byte what
// cmd/diagnose prints for the same directory — verified against the
// CLI's committed golden files, so the CLI goldens and this test can
// only move together.
func TestDiagnoseGoldenParity(t *testing.T) {
	cases := []struct {
		golden  string // file under cmd/diagnose/testdata
		fixture string
		query   string
	}{
		{"diagnose-clean", fixtureClean, ""},
		{"diagnose-full", fixtureClean, "?full=true"},
		{"diagnose-json", fixtureClean, "?format=json"},
		{"diagnose-degraded", fixtureDegraded, ""},
		{"diagnose-degraded-json", fixtureDegraded, "?format=json"},
	}
	for _, c := range cases {
		t.Run(c.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("../../cmd/diagnose/testdata", c.golden+".golden"))
			if err != nil {
				t.Fatalf("CLI golden missing (run go test ./cmd/diagnose -update first): %v", err)
			}
			s := seedServer(t, c.fixture, Config{})
			rec := get(t, s.Handler(), "/v1/diagnose"+c.query)
			if rec.Code != http.StatusOK {
				t.Fatalf("diagnose = %d: %s", rec.Code, rec.Body.String())
			}
			if !bytes.Equal(rec.Body.Bytes(), want) {
				t.Errorf("response diverges from cmd/diagnose output (%d vs %d bytes)\n--- got ---\n%s",
					rec.Body.Len(), len(want), rec.Body.String())
			}

			// The cached second serving must be the same bytes.
			rec = get(t, s.Handler(), "/v1/diagnose"+c.query)
			if !bytes.Equal(rec.Body.Bytes(), want) {
				t.Error("cached response diverges from the first serving")
			}
		})
	}
}

// TestDiagnoseGoldenParityAcrossIngests extends the output contract to
// a live ingest stream: after every accepted batch — including
// out-of-order arrivals, an exact duplicate line and a quarantined line
// — the text and JSON bytes served at the new watermark must equal a
// from-scratch pipeline + render over the corpus accumulated so far, as
// if the server had been seeded with everything at once. This pins the
// incremental delta path to the batch pipeline at every intermediate
// watermark, not just the final one.
func TestDiagnoseGoldenParityAcrossIngests(t *testing.T) {
	store, rep, err := logstore.LoadDirReport(fixtureClean, topology.SchedulerSlurm)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	s.Seed(store, rep)
	h := s.Handler()

	// The independent reference: records in arrival order and the merged
	// ingest ledger, maintained exactly as the server maintains its own.
	accum := append([]events.Record(nil), store.All()...)
	wantRep := cloneReport(rep)

	check := func(wm uint64) {
		t.Helper()
		wantStore := logstore.New(accum)
		res, err := core.RunContextReport(context.Background(), wantStore, core.DefaultConfig(), wantRep.LostChunks())
		if err != nil {
			t.Fatal(err)
		}
		var txt, js bytes.Buffer
		if err := render.Diagnose(&txt, "the served corpus", wantStore, wantRep, res, false); err != nil {
			t.Fatal(err)
		}
		if err := render.DiagnoseJSON(&js, res); err != nil {
			t.Fatal(err)
		}
		for _, c := range []struct {
			query string
			want  []byte
		}{{"", txt.Bytes()}, {"?format=json", js.Bytes()}} {
			rec := get(t, h, "/v1/diagnose"+c.query)
			if rec.Code != http.StatusOK {
				t.Fatalf("watermark %d %q: diagnose = %d: %s", wm, c.query, rec.Code, rec.Body.String())
			}
			if got := rec.Header().Get("X-Hpcfail-Watermark"); got != strconv.FormatUint(wm, 10) {
				t.Errorf("watermark %d %q: served watermark header %q", wm, c.query, got)
			}
			if !bytes.Equal(rec.Body.Bytes(), c.want) {
				t.Errorf("watermark %d %q: served bytes diverge from batch pipeline (%d vs %d bytes)",
					wm, c.query, rec.Body.Len(), len(c.want))
			}
		}
	}

	check(1)

	steps := [][]IngestBatch{
		// A benign burst after the corpus tail.
		{{Stream: "console", Lines: []string{
			"2015-03-03T08:00:00.000000Z c0-0c0s0n0 kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)",
		}}},
		// A fresh terminal plus the job that was running on the node —
		// new detection and new job-table entry in one request.
		{
			{Stream: "scheduler", Lines: []string{
				"2015-03-03T08:10:00.000000Z slurmctld: JobId=901 Action=job_start App=qa_probe User=user01 ReqMem=64M NodeList=c0-0c1s2n1",
				"2015-03-03T08:45:00.000000Z slurmctld: JobId=901 Action=job_end App=qa_probe State=NODE_FAIL ExitCode=1 NodeList=c0-0c1s2n1",
			}},
			{Stream: "console", Lines: []string{
				"2015-03-03T08:30:00.000000Z c0-0c1s2n1 kernel: <2> node c0-0c1s2n1 halting: system shutdown",
			}},
		},
		// Out-of-order arrivals timestamped before already-served records,
		// plus an exact duplicate of an earlier ingested line.
		{
			{Stream: "consumer", Lines: []string{
				"2015-03-03T08:31:00.000000Z c0-0c1s2n1 consumer: <6> node state transition for c0-0c1s2n1 state=down",
				"2015-03-02T12:00:00.000000Z c0-0c0s0n0 consumer: <6> node state transition for c0-0c0s0n0 state=up",
			}},
			{Stream: "console", Lines: []string{
				"2015-03-03T08:00:00.000000Z c0-0c0s0n0 kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)",
			}},
		},
		// A line the parser quarantines: the ledger accounting must stay
		// identical on both sides too.
		{{Stream: "console", Lines: []string{"not a log line at all"}}},
	}
	for _, batches := range steps {
		ires, err := s.Ingest(batches)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches {
			stream, err := events.ParseStream(b.Stream)
			if err != nil {
				t.Fatal(err)
			}
			recs, srep := logparse.ParseLinesReport(stream, topology.SchedulerSlurm, b.Lines)
			accum = append(accum, recs...)
			wantRep.MergeStream(srep)
		}
		check(ires.Watermark)
	}
}
