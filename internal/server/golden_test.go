package server

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// TestDiagnoseGoldenParity is the service's output contract:
// GET /v1/diagnose over a seeded corpus returns byte-for-byte what
// cmd/diagnose prints for the same directory — verified against the
// CLI's committed golden files, so the CLI goldens and this test can
// only move together.
func TestDiagnoseGoldenParity(t *testing.T) {
	cases := []struct {
		golden  string // file under cmd/diagnose/testdata
		fixture string
		query   string
	}{
		{"diagnose-clean", fixtureClean, ""},
		{"diagnose-full", fixtureClean, "?full=true"},
		{"diagnose-json", fixtureClean, "?format=json"},
		{"diagnose-degraded", fixtureDegraded, ""},
		{"diagnose-degraded-json", fixtureDegraded, "?format=json"},
	}
	for _, c := range cases {
		t.Run(c.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("../../cmd/diagnose/testdata", c.golden+".golden"))
			if err != nil {
				t.Fatalf("CLI golden missing (run go test ./cmd/diagnose -update first): %v", err)
			}
			s := seedServer(t, c.fixture, Config{})
			rec := get(t, s.Handler(), "/v1/diagnose"+c.query)
			if rec.Code != http.StatusOK {
				t.Fatalf("diagnose = %d: %s", rec.Code, rec.Body.String())
			}
			if !bytes.Equal(rec.Body.Bytes(), want) {
				t.Errorf("response diverges from cmd/diagnose output (%d vs %d bytes)\n--- got ---\n%s",
					rec.Body.Len(), len(want), rec.Body.String())
			}

			// The cached second serving must be the same bytes.
			rec = get(t, s.Handler(), "/v1/diagnose"+c.query)
			if !bytes.Equal(rec.Body.Bytes(), want) {
				t.Error("cached response diverges from the first serving")
			}
		})
	}
}
