package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"hpcfail/internal/cname"
	"hpcfail/internal/miner"
	"hpcfail/internal/remedy"
	"hpcfail/internal/render"
	"hpcfail/internal/wal"
)

// Handler returns the service's HTTP handler. Ingest and diagnose go
// through admission control; health, metrics, alarms and pprof stay
// reachable under load so the service remains observable while it sheds.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ingest", s.guard("ingest", s.handleIngest))
	mux.HandleFunc("/v1/diagnose", s.guard("diagnose", s.handleDiagnose))
	mux.HandleFunc("/v1/alarms", s.track("alarms", s.handleAlarms))
	mux.HandleFunc("/v1/wal", s.track("wal", s.handleWALStream))
	mux.HandleFunc("/v1/promote", s.track("promote", s.handlePromote))
	mux.HandleFunc("/v1/remediations", s.track("remediations", s.handleRemediations))
	mux.HandleFunc("/v1/templates", s.track("templates", s.handleTemplates))
	mux.HandleFunc("/healthz", s.track("healthz", s.handleHealthz))
	mux.HandleFunc("/metrics", s.track("metrics", s.handleMetrics))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// statusWriter captures the response code for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying flusher so SSE works through the
// metrics wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// guard wraps a handler with draining rejection, admission control and
// request metrics. When the semaphore is full the request is shed
// immediately — 429 plus a Retry-After hint — instead of queueing.
func (s *Server) guard(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.metrics.observe(name, http.StatusServiceUnavailable, 0)
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			http.Error(w, "server is draining", http.StatusServiceUnavailable)
			return
		}
		select {
		case s.sem <- struct{}{}:
		default:
			s.metrics.add(mShed, 1)
			s.metrics.observe(name, http.StatusTooManyRequests, 0)
			w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
			http.Error(w, "server overloaded; retry later", http.StatusTooManyRequests)
			return
		}
		defer func() { <-s.sem }()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.metrics.observe(name, sw.code, time.Since(start))
	}
}

// track wraps a handler with request metrics only — for endpoints that
// must stay reachable under overload and drain.
func (s *Server) track(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.metrics.observe(name, sw.code, time.Since(start))
	}
}

// maxIngestBody bounds one ingest request (32 MiB of raw lines).
const maxIngestBody = 32 << 20

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.readOnly.Load() {
		// Replicas never accept writes: the single-writer watermark is
		// what makes replication (and fencing) coherent.
		if s.cfg.PrimaryURL != "" {
			w.Header().Set("X-Hpcfail-Primary", s.cfg.PrimaryURL)
		}
		http.Error(w, "this node is a read replica; ingest to the primary", http.StatusMisdirectedRequest)
		return
	}
	var req struct {
		Batches []IngestBatch `json:"batches"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad ingest request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Batches) == 0 {
		http.Error(w, "bad ingest request: no batches", http.StatusBadRequest)
		return
	}
	res, err := s.Ingest(req.Batches)
	if err != nil {
		if errors.Is(err, ErrJournal) {
			// Not the client's fault and not accepted. The writer role is
			// now fail-stopped (the WAL tail is unverified); retries reach
			// this node again only after an operator restarts it, so the
			// hint points clients at their retry policy, not at a recovery
			// this process will perform.
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, "bad ingest request: "+err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// diagnoseQuery is the parsed /v1/diagnose parameter set.
type diagnoseQuery struct {
	node     cname.Name
	hasNode  bool
	from, to time.Time
	window   time.Duration
	format   string // "text" or "json"
	full     bool
	// minWM is the read-your-writes token: the response must reflect at
	// least this watermark. Not part of the cache key — it gates when
	// the read runs, not what it renders.
	minWM uint64
}

// key is the cache/singleflight identity of the query at a watermark.
func (q diagnoseQuery) key(watermark uint64) string {
	node := ""
	if q.hasNode {
		node = q.node.String()
	}
	return fmt.Sprintf("%d|%s|%d|%d|%d|%s|%v",
		watermark, node, q.from.UnixNano(), q.to.UnixNano(), q.window, q.format, q.full)
}

func parseDiagnoseQuery(r *http.Request) (diagnoseQuery, error) {
	q := diagnoseQuery{format: "text"}
	v := r.URL.Query()
	if nodeStr := v.Get("node"); nodeStr != "" {
		n, err := cname.Parse(nodeStr)
		if err != nil {
			return q, fmt.Errorf("node: %w", err)
		}
		q.node, q.hasNode = n, true
	}
	for _, p := range []struct {
		name string
		dst  *time.Time
	}{{"from", &q.from}, {"to", &q.to}} {
		if str := v.Get(p.name); str != "" {
			t, err := time.Parse(time.RFC3339, str)
			if err != nil {
				return q, fmt.Errorf("%s: want RFC3339 timestamp: %w", p.name, err)
			}
			*p.dst = t
		}
	}
	if str := v.Get("window"); str != "" {
		d, err := time.ParseDuration(str)
		if err != nil || d <= 0 {
			return q, fmt.Errorf("window: want positive Go duration, got %q", str)
		}
		if !q.from.IsZero() || !q.to.IsZero() {
			return q, fmt.Errorf("window is exclusive with from/to")
		}
		q.window = d
	}
	switch f := v.Get("format"); f {
	case "", "text":
	case "json":
		q.format = "json"
	default:
		return q, fmt.Errorf("format: want text or json, got %q", f)
	}
	if str := v.Get("full"); str != "" {
		b, err := strconv.ParseBool(str)
		if err != nil {
			return q, fmt.Errorf("full: want boolean, got %q", str)
		}
		q.full = b
	}
	if str := v.Get("min_watermark"); str != "" {
		n, err := strconv.ParseUint(str, 10, 64)
		if err != nil {
			return q, fmt.Errorf("min_watermark: want watermark, got %q", str)
		}
		q.minWM = n
	}
	return q, nil
}

// cachedBody is the unit the response cache and render singleflight
// exchange.
type cachedBody struct {
	body        []byte
	contentType string
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	q, err := parseDiagnoseQuery(r)
	if err != nil {
		http.Error(w, "bad query: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.annotateReplica(w)
	if q.minWM > 0 && !s.waitWatermark(w, q.minWM) {
		return
	}
	snap, err := s.snapshotNow()
	if err != nil {
		http.Error(w, "diagnosis unavailable: "+err.Error(), http.StatusServiceUnavailable)
		return
	}

	key := q.key(snap.watermark)
	if body, ct, ok := s.cache.get(key); ok {
		s.metrics.add(mCacheHits, 1)
		writeBody(w, snap.watermark, ct, body)
		return
	}
	s.metrics.add(mCacheMisses, 1)

	v, err, shared := s.sf.Do("render|"+key, func() (any, error) {
		cb, err := s.renderDiagnose(snap, q)
		if err != nil {
			return nil, err
		}
		s.cache.put(key, cb.body, cb.contentType)
		return cb, nil
	})
	if shared {
		s.metrics.add(mCoalesced, 1)
	}
	if err != nil {
		http.Error(w, "diagnosis failed: "+err.Error(), http.StatusNotFound)
		return
	}
	cb := v.(*cachedBody)
	writeBody(w, snap.watermark, cb.contentType, cb.body)
}

// renderDiagnose produces the response body for a query over one
// snapshot — the same render package the CLI prints through, which is
// what keeps the bytes identical.
func (s *Server) renderDiagnose(snap *snapshot, q diagnoseQuery) (*cachedBody, error) {
	from, to := q.from, q.to
	if q.window > 0 {
		if _, last, ok := snap.store.Span(); ok {
			from, to = last.Add(-q.window), last
		}
	}
	res := filterResult(snap.res, q.node, q.hasNode, from, to)
	var buf bytes.Buffer
	if q.format == "json" {
		if err := render.DiagnoseJSON(&buf, res); err != nil {
			return nil, err
		}
		return &cachedBody{body: buf.Bytes(), contentType: "application/x-ndjson"}, nil
	}
	if err := render.Diagnose(&buf, "the served corpus", snap.store, snap.rep, res, q.full); err != nil {
		return nil, err
	}
	return &cachedBody{body: buf.Bytes(), contentType: "text/plain; charset=utf-8"}, nil
}

func writeBody(w http.ResponseWriter, watermark uint64, contentType string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("X-Hpcfail-Watermark", strconv.FormatUint(watermark, 10))
	w.Write(body)
}

func (s *Server) handleAlarms(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	if s.draining.Load() {
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}
	sub := s.broker.subscribe(s.cfg.AlarmBuffer)
	defer s.broker.unsubscribe(sub)
	s.metrics.add(mSSESubscribe, 1)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	// The initial comment lets clients (and proxies) distinguish an
	// established-but-idle stream from a wedged connect.
	fmt.Fprint(w, "retry: 1000\n\n: connected\n\n")
	fl.Flush()

	heartbeat := time.NewTicker(s.cfg.SSEHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.broker.done:
			return
		case ev := <-sub.ch:
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
			fl.Flush()
		case <-heartbeat.C:
			fmt.Fprint(w, ": ping\n\n")
			fl.Flush()
		}
	}
}

// remediationsView is the /v1/remediations GET payload.
type remediationsView struct {
	Enabled    bool            `json:"enabled"`
	KillSwitch bool            `json:"kill_switch"`
	Stats      remedy.Stats    `json:"stats"`
	Queues     [4]int          `json:"queue_depths"`
	Tickets    []remedy.Ticket `json:"tickets"`
}

// handleRemediations serves the ticket ledger (GET, optionally
// ?since=<id>) and the global kill switch (POST {"kill": bool}). It is
// tracked, not guarded: the kill switch must stay reachable while the
// service is shedding load — that is exactly when an operator needs it.
func (s *Server) handleRemediations(w http.ResponseWriter, r *http.Request) {
	if s.remedy == nil {
		writeJSON(w, http.StatusOK, remediationsView{Tickets: []remedy.Ticket{}})
		return
	}
	switch r.Method {
	case http.MethodGet:
		since := int64(0)
		if str := r.URL.Query().Get("since"); str != "" {
			n, err := strconv.ParseInt(str, 10, 64)
			if err != nil || n < 0 {
				http.Error(w, "bad query: since: want non-negative ticket id", http.StatusBadRequest)
				return
			}
			since = n
		}
		tickets := s.remedy.Tickets(since)
		if tickets == nil {
			tickets = []remedy.Ticket{}
		}
		writeJSON(w, http.StatusOK, remediationsView{
			Enabled:    true,
			KillSwitch: s.remedy.KillSwitch(),
			Stats:      s.remedy.Stats(),
			Queues:     s.remedy.QueueDepths(),
			Tickets:    tickets,
		})
	case http.MethodPost:
		var req struct {
			Kill *bool `json:"kill"`
		}
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<10))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil || req.Kill == nil {
			http.Error(w, `bad request: want {"kill": true|false}`, http.StatusBadRequest)
			return
		}
		s.remedy.SetKillSwitch(*req.Kill)
		writeJSON(w, http.StatusOK, struct {
			KillSwitch bool `json:"kill_switch"`
		}{s.remedy.KillSwitch()})
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

// templatesView is the /v1/templates GET payload.
type templatesView struct {
	Enabled bool `json:"enabled"`
	// Seq is the miner's line-sequence watermark; pass it back as
	// ?since= to page only templates seen after this response.
	Seq       uint64               `json:"seq"`
	Stats     miner.Stats          `json:"stats"`
	Templates []miner.TemplateView `json:"templates"`
}

// handleTemplates serves the live mined-template table (GET, optional
// ?since=<seq> pagination cursor and ?limit=<n>), or — with
// ?format=profile — the canonical bootstrap profile (optionally
// ?min_count=<n>). Tracked, not guarded: it reads only the miner's own
// table, never the corpus snapshot.
func (s *Server) handleTemplates(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if s.miner == nil {
		writeJSON(w, http.StatusOK, templatesView{Templates: []miner.TemplateView{}})
		return
	}
	v := r.URL.Query()
	if v.Get("format") == "profile" {
		minCount := uint64(0)
		if str := v.Get("min_count"); str != "" {
			n, err := strconv.ParseUint(str, 10, 64)
			if err != nil {
				http.Error(w, "bad query: min_count: want count", http.StatusBadRequest)
				return
			}
			minCount = n
		}
		data, err := s.miner.Export(minCount).Encode()
		if err != nil {
			http.Error(w, "profile export failed: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		return
	}
	since := uint64(0)
	if str := v.Get("since"); str != "" {
		n, err := strconv.ParseUint(str, 10, 64)
		if err != nil {
			http.Error(w, "bad query: since: want sequence number", http.StatusBadRequest)
			return
		}
		since = n
	}
	limit := 0
	if str := v.Get("limit"); str != "" {
		n, err := strconv.Atoi(str)
		if err != nil || n < 0 {
			http.Error(w, "bad query: limit: want non-negative count", http.StatusBadRequest)
			return
		}
		limit = n
	}
	views, seq := s.miner.TemplatesSince(since, limit)
	if views == nil {
		views = []miner.TemplateView{}
	}
	writeJSON(w, http.StatusOK, templatesView{
		Enabled:   true,
		Seq:       seq,
		Stats:     s.miner.Stats(),
		Templates: views,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status        string  `json:"status"`
		Role          string  `json:"role"`
		Epoch         uint64  `json:"epoch"`
		Records       int     `json:"records"`
		Watermark     uint64  `json:"watermark"`
		Diagnosed     uint64  `json:"diagnosed_watermark"`
		Staleness     uint64  `json:"staleness_watermarks"`
		UptimeSec     float64 `json:"uptime_sec"`
		ReplicaLag    *uint64 `json:"replica_lag_watermarks,omitempty"`
		Degraded      *bool   `json:"replica_degraded,omitempty"`
		JournalFailed bool    `json:"journal_failed,omitempty"`
	}
	wm, diagnosed := s.Staleness()
	role := "primary"
	if s.readOnly.Load() {
		role = "replica"
	}
	st := health{Status: "ok", Role: role, Epoch: s.Epoch(), Records: s.Records(),
		Watermark: wm, Diagnosed: diagnosed, Staleness: wm - diagnosed,
		UptimeSec: time.Since(s.started).Seconds(), JournalFailed: s.JournalBroken()}
	if s.replicaStatus != nil && s.readOnly.Load() {
		rst := s.replicaStatus()
		lag, deg := rst.Lag(), rst.Degraded
		st.ReplicaLag, st.Degraded = &lag, &deg
	}
	code := http.StatusOK
	if s.draining.Load() {
		st.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	state := s.watcher.StateSize()
	stats := s.watcher.Stats()
	lag := 0.0
	if last := s.lastIngestWall.Load(); last > 0 {
		lag = time.Since(time.Unix(0, last)).Seconds()
	}
	wm, diagnosed := s.Staleness()
	epoch := s.Epoch()
	var wst wal.Stats
	l := s.replHandle()
	walOpen := l != nil
	if walOpen {
		// Stat is safe concurrently with the commit leader: the scrape
		// never queues behind a group fsync.
		wst, _ = l.Stat()
	}
	gauges := []gauge{
		{"hpcfail_store_records", "Records in the live corpus.", float64(s.Records())},
		{"hpcfail_ingest_watermark", "Current ingest watermark (bumps once per accepted batch request).", float64(wm)},
		{"hpcfail_snapshot_staleness_watermarks", "Watermarks ingested but not yet applied to the diagnosed snapshot.", float64(wm - diagnosed)},
		{"hpcfail_ingest_lag_seconds", "Seconds since the last accepted ingest batch (0 before the first).", lag},
		{"hpcfail_watcher_nodes", "Nodes with retained watcher state.", float64(state.Nodes)},
		{"hpcfail_watcher_apids", "Retained apid-to-job resolutions.", float64(state.Apids)},
		{"hpcfail_watcher_buffered", "Records held in the watcher reorder buffer.", float64(state.Buffered)},
		{"hpcfail_watcher_fed_records", "Records consumed by the watcher.", float64(stats.Fed)},
		{"hpcfail_cache_entries", "Entries in the rendered-response cache.", float64(s.cache.len())},
		{"hpcfail_inflight_requests", "Requests currently holding an admission slot.", float64(len(s.sem))},
		{"hpcfail_sse_subscribers", "Connected alarm stream subscribers.", float64(s.broker.subscribers())},
		{"hpcfail_epoch", "Fencing epoch this node writes (or would write) at.", float64(epoch)},
		{"hpcfail_ingest_staged", "Writes staged for group commit but not yet covered by a fsync.", float64(s.stagedDepth())},
	}
	if s.miner != nil {
		ms := s.miner.Stats()
		gauges = append(gauges,
			gauge{"hpcfail_miner_templates_live", "Live mined templates (bounded by the miner budget).", float64(ms.TemplatesLive)},
			gauge{"hpcfail_miner_templates_evicted", "Templates evicted under the miner memory budget.", float64(ms.Evicted)},
		)
	}
	if walOpen {
		gauges = append(gauges,
			gauge{"hpcfail_wal_bytes", "Total bytes across replication WAL segments.", float64(wst.Bytes)},
			gauge{"hpcfail_wal_segments", "Replication WAL segment files on disk.", float64(wst.Segments)},
			gauge{"hpcfail_wal_syncs", "Fsyncs issued against the replication WAL (group commit amortizes: records >> syncs).", float64(wst.Syncs)},
		)
	}
	if s.replicaStatus != nil && s.readOnly.Load() {
		rst := s.replicaStatus()
		degraded := 0.0
		if rst.Degraded {
			degraded = 1
		}
		gauges = append(gauges,
			gauge{"hpcfail_replica_applied_watermark", "Last watermark this replica applied.", float64(rst.Applied)},
			gauge{"hpcfail_replica_lag_watermarks", "Watermarks this replica trails the primary by.", float64(rst.Lag())},
			gauge{"hpcfail_replica_degraded", "1 when the replica cannot reach its source (breaker open or silent past the threshold).", degraded},
		)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, gauges)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
