package server

import (
	"encoding/json"
	"sync"
)

// sseEvent is one server-sent event: a name and a pre-marshalled JSON
// payload. Payloads are marshalled once at publish time, not per
// subscriber.
type sseEvent struct {
	name string
	data []byte
}

// broker fans watcher alarms out to SSE subscribers. Publishing is
// strictly non-blocking: the watcher invokes its callbacks with its own
// mutex held, so a slow SSE client must never be able to stall
// ingestion — a subscriber whose buffer is full loses the event (counted
// via onDrop) rather than applying backpressure upstream.
type broker struct {
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool
	// done is closed when the broker shuts down; stream handlers select
	// on it so draining terminates long-lived connections.
	done   chan struct{}
	onDrop func()
}

type subscriber struct {
	ch chan sseEvent
}

func newBroker(onDrop func()) *broker {
	return &broker{subs: make(map[*subscriber]struct{}), done: make(chan struct{}), onDrop: onDrop}
}

// subscribe registers a new subscriber with the given buffer depth.
func (b *broker) subscribe(buf int) *subscriber {
	if buf < 1 {
		buf = 1
	}
	sub := &subscriber{ch: make(chan sseEvent, buf)}
	b.mu.Lock()
	if !b.closed {
		b.subs[sub] = struct{}{}
	}
	b.mu.Unlock()
	return sub
}

func (b *broker) unsubscribe(sub *subscriber) {
	b.mu.Lock()
	delete(b.subs, sub)
	b.mu.Unlock()
}

// publish marshals the payload and offers it to every subscriber
// without blocking.
func (b *broker) publish(name string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	ev := sseEvent{name: name, data: data}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	for sub := range b.subs {
		select {
		case sub.ch <- ev:
		default:
			if b.onDrop != nil {
				b.onDrop()
			}
		}
	}
}

// close shuts the broker down: no further events are delivered and all
// stream handlers observe done and return. Subscriber channels are left
// open (never closed) so an in-flight publish cannot panic.
func (b *broker) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	b.subs = make(map[*subscriber]struct{})
	close(b.done)
}

// subscribers reports the current subscriber count (metrics gauge).
func (b *broker) subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}
