package server

import "sync"

// flightGroup coalesces concurrent calls with the same key into one
// execution — the stampede breaker in front of the diagnosis engine.
// While one goroutine computes a key, later callers for the same key
// block and receive the same result instead of redoing the work. A
// hand-rolled minimum of golang.org/x/sync/singleflight (the module is
// dependency-free by policy).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

// Do executes fn once per concurrent set of callers sharing key.
// shared reports whether the result was computed by another caller.
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	func() {
		defer func() {
			// A panicking compute must not deadlock its waiters: record
			// it, release them, and re-panic on the computing goroutine.
			if r := recover(); r != nil {
				c.err = &panicError{r}
				g.forget(key)
				c.wg.Done()
				panic(r)
			}
		}()
		c.val, c.err = fn()
	}()
	g.forget(key)
	c.wg.Done()
	return c.val, c.err, false
}

func (g *flightGroup) forget(key string) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
}

type panicError struct{ value any }

func (p *panicError) Error() string { return "server: coalesced call panicked" }
