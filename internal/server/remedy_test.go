package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hpcfail/internal/remedy"
)

// remedyServer builds an unseeded server with the closed loop enabled
// and pushes one terminal line through ingest, which must surface as a
// detection, route into the engine and mint at least one ticket.
func remedyServer(t *testing.T) *Server {
	t.Helper()
	s := New(Config{EnableRemedy: true, Remedy: remedy.Config{BackoffBase: -1}})
	_, err := s.Ingest([]IngestBatch{{Stream: "console", Lines: []string{
		"2015-03-02T08:59:13.776954Z c1-0c2s8n1 kernel: <2> node c1-0c2s8n1 halting: system shutdown",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRemediationsEndpointClosedLoop(t *testing.T) {
	s := remedyServer(t)
	h := s.Handler()

	rec := get(t, h, "/v1/remediations")
	if rec.Code != http.StatusOK {
		t.Fatalf("remediations = %d", rec.Code)
	}
	var view remediationsView
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if !view.Enabled {
		t.Fatal("remedy enabled but endpoint reports disabled")
	}
	if len(view.Tickets) == 0 || view.Stats.Executed == 0 {
		t.Fatalf("ingested terminal line minted no tickets: %+v", view)
	}
	found := false
	for _, tk := range view.Tickets {
		if tk.Node == "c1-0c2s8n1" && tk.Kind == "admindown" && tk.Decision == remedy.DecisionExecuted {
			found = true
		}
	}
	if !found {
		t.Fatalf("no executed admindown for the failed node in %+v", view.Tickets)
	}

	// since= pagination: everything before the last id drops out.
	last := view.Tickets[len(view.Tickets)-1].ID
	rec = get(t, h, "/v1/remediations?since="+jsonNum(last))
	var tail remediationsView
	if err := json.Unmarshal(rec.Body.Bytes(), &tail); err != nil {
		t.Fatal(err)
	}
	if len(tail.Tickets) != 0 {
		t.Fatalf("since=%d returned %d tickets, want 0", last, len(tail.Tickets))
	}

	// The ledger shows up in the Prometheus counters too.
	if s.counter(mRemedyExecuted) == 0 {
		t.Error("hpcfail_remediation_executed_total not incremented")
	}
	body := get(t, h, "/metrics").Body.String()
	if !strings.Contains(body, "hpcfail_remediation_executed_total") {
		t.Error("metrics exposition lacks remediation counters")
	}
}

func TestRemediationsKillSwitch(t *testing.T) {
	s := remedyServer(t)
	h := s.Handler()

	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/remediations", strings.NewReader(body))
		h.ServeHTTP(rec, req)
		return rec
	}
	if rec := post(`{"kill": true}`); rec.Code != http.StatusOK {
		t.Fatalf("kill POST = %d: %s", rec.Code, rec.Body.String())
	}
	if !s.Remedy().KillSwitch() {
		t.Fatal("kill switch not set")
	}
	if rec := post(`{}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty kill POST = %d, want 400", rec.Code)
	}
	if rec := post(`{"kill": false}`); rec.Code != http.StatusOK {
		t.Fatalf("unkill POST = %d", rec.Code)
	}
	if s.Remedy().KillSwitch() {
		t.Fatal("kill switch not cleared")
	}
}

func TestRemediationsDisabled(t *testing.T) {
	s := seedServer(t, fixtureClean, Config{})
	rec := get(t, s.Handler(), "/v1/remediations")
	if rec.Code != http.StatusOK {
		t.Fatalf("remediations = %d", rec.Code)
	}
	var view remediationsView
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.Enabled || len(view.Tickets) != 0 {
		t.Fatalf("disabled server reported %+v", view)
	}
	if s.Remedy() != nil {
		t.Fatal("engine constructed despite EnableRemedy=false")
	}
}

func jsonNum(n int64) string {
	b, _ := json.Marshal(n)
	return string(b)
}
