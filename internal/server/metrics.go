package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// metrics is a hand-rolled Prometheus text-format registry — counters,
// per-handler request/latency series, and scrape-time gauges — kept
// dependency-free like the rest of the module. All series share one
// mutex; the handlers touch it once or twice per request, far below any
// contention that would justify sharding.
type metrics struct {
	mu       sync.Mutex
	counters map[string]uint64
	requests map[reqKey]uint64
	latency  map[string]*histogram
	apply    *histogram
	// journalSync times each group-commit fsync; groupSize counts how
	// many staged writes each fsync covered. Their ratio is the
	// amortization the group committer is buying.
	journalSync *histogram
	groupSize   *histogram
}

type reqKey struct {
	handler string
	code    int
}

// Counter names are full Prometheus series names; counterHelp below is
// the exposition help text and doubles as the registry of known series.
const (
	mCacheHits    = "hpcfail_cache_hits_total"
	mCacheMisses  = "hpcfail_cache_misses_total"
	mCoalesced    = "hpcfail_coalesced_queries_total"
	mShed         = "hpcfail_shed_requests_total"
	mIngestBatch  = "hpcfail_ingest_batches_total"
	mIngestRecs   = "hpcfail_ingest_records_total"
	mIngestQuar   = "hpcfail_ingest_quarantined_total"
	mDetections   = "hpcfail_detections_total"
	mAlarms       = "hpcfail_alarms_total"
	mSSEDropped   = "hpcfail_sse_dropped_events_total"
	mSSESubscribe = "hpcfail_sse_subscriptions_total"

	mRemedyExecuted = "hpcfail_remediation_executed_total"
	mRemedyRefused  = "hpcfail_remediation_refused_total"
	mRemedyFailed   = "hpcfail_remediation_failed_total"
	mRemedyRequeues = "hpcfail_remediation_requeued_jobs_total"

	mReplApplied  = "hpcfail_replication_applied_entries_total"
	mReplStreamed = "hpcfail_replication_streamed_entries_total"
	mReplFenced   = "hpcfail_replication_fenced_entries_total"

	mMinerLines    = "hpcfail_miner_lines_mined_total"
	mMinerPromoted = "hpcfail_miner_promotions_total"
	mCandidates    = "hpcfail_candidates_total"
)

var counterHelp = map[string]string{
	mCacheHits:    "Diagnosis responses served from the result cache.",
	mCacheMisses:  "Diagnosis responses that had to be rendered.",
	mCoalesced:    "Diagnosis queries coalesced onto another identical in-flight query.",
	mShed:         "Requests rejected by admission control (HTTP 429).",
	mIngestBatch:  "Ingest batches accepted.",
	mIngestRecs:   "Log records parsed into the live store.",
	mIngestQuar:   "Ingested lines quarantined as unparseable.",
	mDetections:   "Confirmed node failures emitted by the watcher.",
	mAlarms:       "Early-warning alarms emitted by the watcher.",
	mSSEDropped:   "SSE events dropped because a subscriber was too slow.",
	mSSESubscribe: "SSE subscriptions accepted.",

	mRemedyExecuted: "Remediation SOPs executed to completion.",
	mRemedyRefused:  "Remediation decisions refused by idempotency or safety guards.",
	mRemedyFailed:   "Remediation SOPs that exhausted retries.",
	mRemedyRequeues: "Jobs requeued by drain SOPs.",

	mReplApplied:  "Replicated entries folded into this node's corpus.",
	mReplStreamed: "Entries sent to /v1/wal stream consumers.",
	mReplFenced:   "Entries rejected because their epoch was deposed.",

	mMinerLines:    "Quarantined or unclassified lines fed to the template miner.",
	mMinerPromoted: "Mined templates promoted past the frequency or burst threshold.",
	mCandidates:    "Distinct novel-signature candidates surfaced by the watcher.",
}

// latencyBuckets are the request-duration histogram upper bounds in
// seconds; +Inf is implicit.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 10}

// applyBuckets bound the snapshot-apply duration histogram. Finer at
// the low end than latencyBuckets: a post-ingest delta apply is
// expected sub-millisecond, and regressions back toward full-corpus
// rebuild cost (milliseconds) must move visibly across buckets.
var applyBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 10}

// syncBuckets bound the journal-fsync duration histogram: ~100µs on a
// local SSD, up toward seconds on a struggling device.
var syncBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 1}

// groupBuckets bound the group-size histogram — powers of two because
// the interesting signal is order of magnitude: 1 means no concurrency
// to amortize, 16+ means the committer is earning its keep.
var groupBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

type histogram struct {
	counts []uint64 // one per bucket plus a final +Inf slot
	sum    float64
	total  uint64
}

func newMetrics() *metrics {
	return &metrics{
		counters:    make(map[string]uint64),
		requests:    make(map[reqKey]uint64),
		latency:     make(map[string]*histogram),
		apply:       &histogram{counts: make([]uint64, len(applyBuckets)+1)},
		journalSync: &histogram{counts: make([]uint64, len(syncBuckets)+1)},
		groupSize:   &histogram{counts: make([]uint64, len(groupBuckets)+1)},
	}
}

// add increments a named counter.
func (m *metrics) add(name string, n uint64) {
	m.mu.Lock()
	m.counters[name] += n
	m.mu.Unlock()
}

// observe records one finished request: its status code and duration.
func (m *metrics) observe(handler string, code int, d time.Duration) {
	sec := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[reqKey{handler, code}]++
	h := m.latency[handler]
	if h == nil {
		h = &histogram{counts: make([]uint64, len(latencyBuckets)+1)}
		m.latency[handler] = h
	}
	i := 0
	for i < len(latencyBuckets) && sec > latencyBuckets[i] {
		i++
	}
	h.counts[i]++
	h.sum += sec
	h.total++
}

// observeApply records one incremental-engine delta application — the
// time a post-ingest query spent bringing the snapshot current.
func (m *metrics) observeApply(d time.Duration) {
	sec := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	i := 0
	for i < len(applyBuckets) && sec > applyBuckets[i] {
		i++
	}
	m.apply.counts[i]++
	m.apply.sum += sec
	m.apply.total++
}

// observeSync records one group-commit fsync duration.
func (m *metrics) observeSync(d time.Duration) {
	sec := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	i := 0
	for i < len(syncBuckets) && sec > syncBuckets[i] {
		i++
	}
	m.journalSync.counts[i]++
	m.journalSync.sum += sec
	m.journalSync.total++
}

// observeGroup records how many staged writes one durable group (one
// fsync) covered.
func (m *metrics) observeGroup(n int) {
	v := float64(n)
	m.mu.Lock()
	defer m.mu.Unlock()
	i := 0
	for i < len(groupBuckets) && v > groupBuckets[i] {
		i++
	}
	m.groupSize.counts[i]++
	m.groupSize.sum += v
	m.groupSize.total++
}

// gauge is a scrape-time measurement supplied by the server.
type gauge struct {
	name  string
	help  string
	value float64
}

// write renders the registry in Prometheus text exposition format,
// deterministically ordered so scrapes (and tests) are stable.
func (m *metrics) write(w io.Writer, gauges []gauge) {
	m.mu.Lock()
	defer m.mu.Unlock()

	names := make([]string, 0, len(counterHelp))
	for name := range counterHelp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			name, counterHelp[name], name, name, m.counters[name])
	}

	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].handler != keys[j].handler {
			return keys[i].handler < keys[j].handler
		}
		return keys[i].code < keys[j].code
	})
	fmt.Fprintf(w, "# HELP hpcfail_http_requests_total HTTP requests by handler and status code.\n")
	fmt.Fprintf(w, "# TYPE hpcfail_http_requests_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(w, "hpcfail_http_requests_total{code=%q,handler=%q} %d\n", fmt.Sprint(k.code), k.handler, m.requests[k])
	}

	handlers := make([]string, 0, len(m.latency))
	for h := range m.latency {
		handlers = append(handlers, h)
	}
	sort.Strings(handlers)
	fmt.Fprintf(w, "# HELP hpcfail_http_request_duration_seconds Request latency by handler.\n")
	fmt.Fprintf(w, "# TYPE hpcfail_http_request_duration_seconds histogram\n")
	for _, hname := range handlers {
		h := m.latency[hname]
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "hpcfail_http_request_duration_seconds_bucket{handler=%q,le=%q} %d\n", hname, trimFloat(ub), cum)
		}
		cum += h.counts[len(latencyBuckets)]
		fmt.Fprintf(w, "hpcfail_http_request_duration_seconds_bucket{handler=%q,le=\"+Inf\"} %d\n", hname, cum)
		fmt.Fprintf(w, "hpcfail_http_request_duration_seconds_sum{handler=%q} %g\n", hname, h.sum)
		fmt.Fprintf(w, "hpcfail_http_request_duration_seconds_count{handler=%q} %d\n", hname, h.total)
	}

	fmt.Fprintf(w, "# HELP hpcfail_snapshot_apply_seconds Incremental delta-apply duration per snapshot advance.\n")
	fmt.Fprintf(w, "# TYPE hpcfail_snapshot_apply_seconds histogram\n")
	cum := uint64(0)
	for i, ub := range applyBuckets {
		cum += m.apply.counts[i]
		fmt.Fprintf(w, "hpcfail_snapshot_apply_seconds_bucket{le=%q} %d\n", trimFloat(ub), cum)
	}
	cum += m.apply.counts[len(applyBuckets)]
	fmt.Fprintf(w, "hpcfail_snapshot_apply_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "hpcfail_snapshot_apply_seconds_sum %g\n", m.apply.sum)
	fmt.Fprintf(w, "hpcfail_snapshot_apply_seconds_count %d\n", m.apply.total)

	fmt.Fprintf(w, "# HELP hpcfail_journal_sync_seconds Replication-journal fsync duration per group commit.\n")
	fmt.Fprintf(w, "# TYPE hpcfail_journal_sync_seconds histogram\n")
	cum = 0
	for i, ub := range syncBuckets {
		cum += m.journalSync.counts[i]
		fmt.Fprintf(w, "hpcfail_journal_sync_seconds_bucket{le=%q} %d\n", trimFloat(ub), cum)
	}
	cum += m.journalSync.counts[len(syncBuckets)]
	fmt.Fprintf(w, "hpcfail_journal_sync_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "hpcfail_journal_sync_seconds_sum %g\n", m.journalSync.sum)
	fmt.Fprintf(w, "hpcfail_journal_sync_seconds_count %d\n", m.journalSync.total)

	fmt.Fprintf(w, "# HELP hpcfail_journal_group_size Writes covered by one group-commit fsync.\n")
	fmt.Fprintf(w, "# TYPE hpcfail_journal_group_size histogram\n")
	cum = 0
	for i, ub := range groupBuckets {
		cum += m.groupSize.counts[i]
		fmt.Fprintf(w, "hpcfail_journal_group_size_bucket{le=%q} %d\n", trimFloat(ub), cum)
	}
	cum += m.groupSize.counts[len(groupBuckets)]
	fmt.Fprintf(w, "hpcfail_journal_group_size_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "hpcfail_journal_group_size_sum %g\n", m.groupSize.sum)
	fmt.Fprintf(w, "hpcfail_journal_group_size_count %d\n", m.groupSize.total)

	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", g.name, g.help, g.name, g.name, g.value)
	}
}

func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
