package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Serving benchmarks — the BENCH_pr5.json baseline the CI bench gate
// tracks. Cached is the steady-state hot path; Render is one full
// response render (filter + report tables) without the cache; Ingest is
// one 64-line batch through parse, store append and watcher.

func BenchmarkServeDiagnoseCached(b *testing.B) {
	s := seedServer(b, fixtureClean, Config{})
	h := s.Handler()
	if rec := get(b, h, "/v1/diagnose"); rec.Code != http.StatusOK {
		b.Fatalf("warmup = %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/diagnose", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("diagnose = %d", rec.Code)
		}
	}
}

func BenchmarkServeDiagnoseRender(b *testing.B) {
	s := seedServer(b, fixtureClean, Config{})
	snap, err := s.snapshotNow()
	if err != nil {
		b.Fatal(err)
	}
	q := diagnoseQuery{format: "text"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.renderDiagnose(snap, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeIngest(b *testing.B) {
	data, err := os.ReadFile(fixtureClean + "/console.log")
	if err != nil {
		b.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) > 64 {
		lines = lines[:64]
	}
	s := seedServer(b, fixtureClean, Config{})
	batch := []IngestBatch{{Stream: "console", Lines: lines}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Ingest(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeSnapshotRebuild(b *testing.B) {
	s := seedServer(b, fixtureClean, Config{})
	line := "2015-03-03T00:00:00.000000Z c0-0c0s0n0 kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each iteration invalidates (one-line ingest) and re-snapshots —
		// since the incremental engine this applies a one-record delta
		// where it used to re-index and re-diagnose the whole corpus.
		if _, err := s.Ingest([]IngestBatch{{Stream: "console", Lines: []string{line}}}); err != nil {
			b.Fatal(err)
		}
		if _, err := s.snapshotNow(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestJournaledSync is the serialized durable-ingest floor:
// one writer, every group is a group of one, every ack pays a full
// fsync. This is the ceiling group commit exists to break — compare
// BenchmarkIngestParallel, where concurrent writers share each fsync.
func BenchmarkIngestJournaledSync(b *testing.B) {
	store, rep := loadFixture(b)
	line := "2015-03-03T08:00:00.000000Z c0-0c0s0n0 kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)"
	batches := []IngestBatch{{Stream: "console", Lines: []string{line}}}
	s := newReplNode(b, store, rep, Config{ReplicationDir: b.TempDir(), ReplicationSync: true})
	defer s.CloseReplication()
	if _, err := s.Ingest(batches); err != nil { // warm the WAL segment
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Ingest(batches); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// benchSyncFloor pads each journal fsync in BenchmarkIngestParallel to
// a fixed minimum latency. The quantity under test is amortization —
// one sync covering a whole group versus one sync per ack — but on
// hardware where fsync is nearly free (write-back cache, fast NVMe on a
// CI runner) the p16/p1 ratio compresses toward the CPU cost of staging
// and the -speedup gate would flake on a correct implementation. The
// real Sync still runs; only its observed latency is clamped from
// below, so the ratio is stable across machines while a broken
// amortization (a sync per ack) still pays the floor per ack and fails
// the gate.
const benchSyncFloor = 500 * time.Microsecond

// BenchmarkIngestParallel measures durable ingest throughput with p
// concurrent closed-loop writers sharing one server and one fsynced
// journal. ns/op is wall time over total acks, so with group commit
// working p16 must land far below p1 — the PR 9 acceptance bar is ≥5×,
// gated in CI by cmd/benchgate -speedup against BENCH_pr9.json. Run
// with -benchtime=NNNx (not a duration) so every writer contributes
// enough acks for groups to form.
func BenchmarkIngestParallel(b *testing.B) {
	store, rep := loadFixture(b)
	line := "2015-03-03T08:00:00.000000Z c0-0c0s0n0 kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)"
	batches := []IngestBatch{{Stream: "console", Lines: []string{line}}}
	for _, p := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			s := newReplNode(b, store, rep, Config{ReplicationDir: b.TempDir(), ReplicationSync: true})
			defer s.CloseReplication()
			l := s.replHandle()
			s.testSyncHook = func() error {
				start := time.Now()
				err := l.Sync()
				if d := time.Since(start); d < benchSyncFloor {
					time.Sleep(benchSyncFloor - d)
				}
				return err
			}
			if _, err := s.Ingest(batches); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var taken atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < p; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for taken.Add(1) <= int64(b.N) {
						if _, err := s.Ingest(batches); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
		})
	}
}

// BenchmarkServeFirstQueryAfterIngest is the latency the incremental
// engine exists to cut: one-line ingest, then the full first query at
// the new watermark through the handler — delta apply, render, cache
// fill. The PR7 acceptance bar is ≥10× under the pre-incremental
// BenchmarkServeSnapshotRebuild (~1.7ms on the PR5 baseline), which
// didn't even include the render.
func BenchmarkServeFirstQueryAfterIngest(b *testing.B) {
	s := seedServer(b, fixtureClean, Config{})
	h := s.Handler()
	if rec := get(b, h, "/v1/diagnose"); rec.Code != http.StatusOK {
		b.Fatalf("warmup = %d", rec.Code)
	}
	line := "2015-03-03T00:00:00.000000Z c0-0c0s0n0 kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)"
	batch := []IngestBatch{{Stream: "console", Lines: []string{line}}}
	req := httptest.NewRequest(http.MethodGet, "/v1/diagnose", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Ingest(batch); err != nil {
			b.Fatal(err)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("diagnose = %d", rec.Code)
		}
	}
}
