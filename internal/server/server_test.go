package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hpcfail/internal/logstore"
	"hpcfail/internal/topology"
)

const (
	fixtureClean    = "../../testdata/corpus-clean"
	fixtureDegraded = "../../testdata/corpus-degraded"
)

// seedServer builds a server bootstrapped from a fixture corpus, the
// way cmd/serve does it.
func seedServer(t testing.TB, dir string, cfg Config) *Server {
	t.Helper()
	store, rep, err := logstore.LoadDirReport(dir, topology.SchedulerSlurm)
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	s.Seed(store, rep)
	return s
}

func get(t testing.TB, h http.Handler, target string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	return rec
}

func TestHealthz(t *testing.T) {
	s := seedServer(t, fixtureClean, Config{})
	h := s.Handler()

	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", rec.Code)
	}
	var st struct {
		Status    string `json:"status"`
		Records   int    `json:"records"`
		Watermark uint64 `json:"watermark"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "ok" || st.Records == 0 || st.Watermark != 1 {
		t.Errorf("healthz = %+v, want ok with seeded corpus at watermark 1", st)
	}

	s.BeginDrain()
	rec = get(t, h, "/healthz")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Errorf("draining healthz = %d %q, want 503 draining", rec.Code, rec.Body.String())
	}
}

func TestIngestAdvancesWatermarkAndInvalidates(t *testing.T) {
	s := seedServer(t, fixtureClean, Config{})
	h := s.Handler()

	rec := get(t, h, "/v1/diagnose")
	if rec.Code != http.StatusOK {
		t.Fatalf("diagnose = %d: %s", rec.Code, rec.Body.String())
	}
	if wm := rec.Header().Get("X-Hpcfail-Watermark"); wm != "1" {
		t.Errorf("pre-ingest watermark header = %q, want 1", wm)
	}

	// A second identical query must come from the cache.
	misses := s.counter(mCacheMisses)
	rec = get(t, h, "/v1/diagnose")
	if rec.Code != http.StatusOK {
		t.Fatalf("cached diagnose = %d", rec.Code)
	}
	if got := s.counter(mCacheMisses); got != misses {
		t.Errorf("second identical query missed the cache (misses %d -> %d)", misses, got)
	}
	if s.counter(mCacheHits) == 0 {
		t.Error("no cache hit recorded for identical repeat query")
	}

	before := s.Records()
	body := `{"batches":[{"stream":"console","lines":[` +
		`"2015-03-03T00:00:00.000000Z c0-0c0s0n0 kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)"]}]}`
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader(body))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", rec.Code, rec.Body.String())
	}
	var res IngestResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 || res.Watermark != 2 {
		t.Errorf("ingest result = %+v, want 1 accepted at watermark 2", res)
	}

	rec = get(t, h, "/v1/diagnose")
	if rec.Code != http.StatusOK {
		t.Fatalf("post-ingest diagnose = %d", rec.Code)
	}
	if wm := rec.Header().Get("X-Hpcfail-Watermark"); wm != "2" {
		t.Errorf("post-ingest watermark header = %q, want 2 (cache not invalidated)", wm)
	}
	if s.Records() != before+1 {
		t.Errorf("corpus grew %d -> %d, want +1", before, s.Records())
	}
}

func TestIngestRejectsBadRequests(t *testing.T) {
	s := seedServer(t, fixtureClean, Config{})
	h := s.Handler()
	cases := []struct {
		name, body string
		method     string
		want       int
	}{
		{"get-method", "", http.MethodGet, http.StatusMethodNotAllowed},
		{"bad-json", "{", http.MethodPost, http.StatusBadRequest},
		{"no-batches", `{"batches":[]}`, http.MethodPost, http.StatusBadRequest},
		{"unknown-stream", `{"batches":[{"stream":"nope","lines":["x"]}]}`, http.MethodPost, http.StatusBadRequest},
		{"unknown-field", `{"streams":[]}`, http.MethodPost, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req := httptest.NewRequest(c.method, "/v1/ingest", strings.NewReader(c.body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != c.want {
				t.Errorf("code = %d, want %d (%s)", rec.Code, c.want, rec.Body.String())
			}
		})
	}
	if s.Watermark() != 1 {
		t.Errorf("rejected requests advanced the watermark to %d", s.Watermark())
	}
}

func TestDiagnoseQueryValidation(t *testing.T) {
	s := seedServer(t, fixtureClean, Config{})
	h := s.Handler()
	for _, target := range []string{
		"/v1/diagnose?node=not-a-cname",
		"/v1/diagnose?from=yesterday",
		"/v1/diagnose?window=broken",
		"/v1/diagnose?window=1h&from=2015-03-02T00:00:00Z",
		"/v1/diagnose?format=xml",
		"/v1/diagnose?full=maybe",
	} {
		if rec := get(t, h, target); rec.Code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", target, rec.Code)
		}
	}
}

func TestDiagnoseFilters(t *testing.T) {
	s := seedServer(t, fixtureClean, Config{})
	h := s.Handler()

	full := get(t, h, "/v1/diagnose?format=json")
	if full.Code != http.StatusOK {
		t.Fatalf("diagnose = %d", full.Code)
	}
	all := strings.Count(full.Body.String(), "\n")
	if all == 0 {
		t.Fatal("fixture corpus produced no diagnoses")
	}

	// Scope to the first diagnosed node: every returned line mentions it
	// and at least one comes back.
	var first struct {
		Node string `json:"node"`
	}
	if err := json.Unmarshal([]byte(strings.SplitN(full.Body.String(), "\n", 2)[0]), &first); err != nil {
		t.Fatal(err)
	}
	scoped := get(t, h, "/v1/diagnose?format=json&node="+first.Node)
	if scoped.Code != http.StatusOK {
		t.Fatalf("scoped diagnose = %d", scoped.Code)
	}
	lines := strings.Split(strings.TrimSpace(scoped.Body.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatalf("node filter %q returned nothing", first.Node)
	}
	for _, l := range lines {
		if !strings.Contains(l, `"node":"`+first.Node+`"`) {
			t.Errorf("filtered line for other node: %s", l)
		}
	}
	if len(lines) >= all {
		t.Logf("note: node %s accounts for all %d diagnoses", first.Node, all)
	}

	// A window ending at the corpus tail keeps everything; a tiny one
	// cannot return more.
	wide := get(t, h, "/v1/diagnose?format=json&window=8760h")
	tiny := get(t, h, "/v1/diagnose?format=json&window=1s")
	if wide.Code != http.StatusOK || tiny.Code != http.StatusOK {
		t.Fatalf("window diagnose = %d / %d", wide.Code, tiny.Code)
	}
	if w, n := strings.Count(wide.Body.String(), "\n"), strings.Count(tiny.Body.String(), "\n"); w != all || n > w {
		t.Errorf("window filtering: wide=%d tiny=%d all=%d", w, n, all)
	}
}

func TestAdmissionControlSheds(t *testing.T) {
	s := seedServer(t, fixtureClean, Config{MaxInflight: 2})
	h := s.Handler()

	// Occupy every admission slot, as in-flight requests would.
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	rec := get(t, h, "/v1/diagnose")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overloaded diagnose = %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("429 carried no Retry-After hint")
	}
	if s.counter(mShed) == 0 {
		t.Error("shed counter not incremented")
	}
	<-s.sem
	<-s.sem
	if rec := get(t, h, "/v1/diagnose"); rec.Code != http.StatusOK {
		t.Errorf("post-overload diagnose = %d, want 200", rec.Code)
	}
}

func TestDrainRejectsGuardedEndpoints(t *testing.T) {
	s := seedServer(t, fixtureClean, Config{})
	h := s.Handler()
	s.BeginDrain()
	for _, target := range []string{"/v1/diagnose", "/v1/alarms"} {
		if rec := get(t, h, target); rec.Code != http.StatusServiceUnavailable {
			t.Errorf("draining %s = %d, want 503", target, rec.Code)
		}
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader(`{"batches":[]}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining ingest = %d, want 503", rec.Code)
	}
	// Metrics stay reachable while draining.
	if rec := get(t, h, "/metrics"); rec.Code != http.StatusOK {
		t.Errorf("draining metrics = %d, want 200", rec.Code)
	}
}

func TestCheckpointWritesWatcherSnapshot(t *testing.T) {
	path := t.TempDir() + "/watch.ckpt"
	s := seedServer(t, fixtureClean, Config{CheckpointPath: path})
	s.BeginDrain()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{})
	restored, err := s2.RestoreCheckpoint(path)
	if err != nil || !restored {
		t.Fatalf("restore = %v, %v; want true, nil", restored, err)
	}
	// The snapshot carries detection state, not feed counters: the
	// restored watcher must agree on retained node state.
	if s2.watcher.StateSize().Nodes != s.watcher.StateSize().Nodes {
		t.Errorf("restored watcher nodes = %d, want %d",
			s2.watcher.StateSize().Nodes, s.watcher.StateSize().Nodes)
	}
}

func TestMetricsExposition(t *testing.T) {
	s := seedServer(t, fixtureClean, Config{})
	h := s.Handler()
	get(t, h, "/v1/diagnose")
	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE hpcfail_http_requests_total counter",
		`hpcfail_http_requests_total{code="200",handler="diagnose"} 1`,
		"# TYPE hpcfail_http_request_duration_seconds histogram",
		"hpcfail_http_request_duration_seconds_bucket{handler=\"diagnose\",le=\"+Inf\"} 1",
		"# TYPE hpcfail_store_records gauge",
		"hpcfail_ingest_watermark 1",
		"hpcfail_cache_entries 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output lacks %q", want)
		}
	}
}

func TestAlarmStreamDeliversDetections(t *testing.T) {
	// Fresh, unseeded server: replaying a fixture terminal line must
	// surface as an SSE failure event.
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.BeginDrain()

	resp, err := http.Get(ts.URL + "/v1/alarms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alarms = %d", resp.StatusCode)
	}

	events := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			events <- sc.Text()
		}
		close(events)
	}()
	// The preamble proves the subscription is live before we ingest.
	waitForLine(t, events, "retry:")

	_, err = s.Ingest([]IngestBatch{{Stream: "console", Lines: []string{
		"2015-03-02T08:59:13.776954Z c1-0c2s8n1 kernel: <2> node c1-0c2s8n1 halting: system shutdown",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	waitForLine(t, events, "event: failure")
	waitForLine(t, events, `"node":"c1-0c2s8n1"`)
}

func waitForLine(t *testing.T, lines <-chan string, substr string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case l, ok := <-lines:
			if !ok {
				t.Fatalf("stream closed before %q", substr)
			}
			if strings.Contains(l, substr) {
				return
			}
		case <-deadline:
			t.Fatalf("no line containing %q within 5s", substr)
		}
	}
}

// TestSnapshotClonesOncePerApply is the regression guard for the
// per-query ledger copy the incremental rework removed: the ingest
// ledger is deep-copied when a delta is applied (and twice at Seed),
// never per query — queries at a memoized watermark serve the snapshot
// as-is.
func TestSnapshotClonesOncePerApply(t *testing.T) {
	s := seedServer(t, fixtureClean, Config{})
	h := s.Handler()
	base := s.cloneCalls.Load() // Seed's copies

	// Repeated queries — cached, and a distinct render at the same
	// watermark — must not clone.
	for i := 0; i < 5; i++ {
		if rec := get(t, h, "/v1/diagnose"); rec.Code != http.StatusOK {
			t.Fatalf("diagnose = %d", rec.Code)
		}
	}
	if rec := get(t, h, "/v1/diagnose?format=json"); rec.Code != http.StatusOK {
		t.Fatalf("diagnose json = %d", rec.Code)
	}
	if got := s.cloneCalls.Load(); got != base {
		t.Fatalf("queries at a memoized watermark cloned the ledger %d times", got-base)
	}

	// One ingest followed by any number of queries clones exactly once.
	if _, err := s.Ingest([]IngestBatch{{Stream: "console", Lines: []string{
		"2015-03-03T08:00:00.000000Z c0-0c0s0n0 kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)",
	}}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if rec := get(t, h, "/v1/diagnose"); rec.Code != http.StatusOK {
			t.Fatalf("post-ingest diagnose = %d", rec.Code)
		}
	}
	if got := s.cloneCalls.Load(); got != base+1 {
		t.Fatalf("one applied delta caused %d ledger clones, want 1", got-base)
	}
}

// TestStalenessAndApplyMetrics covers the freshness surface added with
// the incremental engine: /healthz reports the diagnosed watermark and
// the staleness (watermarks ingested but not yet applied), /metrics
// carries the matching gauge and the delta-apply duration histogram.
func TestStalenessAndApplyMetrics(t *testing.T) {
	s := seedServer(t, fixtureClean, Config{})
	h := s.Handler()

	mustContain := func(stage, body string, wants ...string) {
		t.Helper()
		for _, w := range wants {
			if !strings.Contains(body, w) {
				t.Errorf("%s: metrics output lacks %q", stage, w)
			}
		}
	}

	// Freshly seeded: the snapshot is current and Seed's eager apply is
	// already on the histogram.
	mustContain("seeded", get(t, h, "/metrics").Body.String(),
		"# TYPE hpcfail_snapshot_staleness_watermarks gauge",
		"hpcfail_snapshot_staleness_watermarks 0",
		"# TYPE hpcfail_snapshot_apply_seconds histogram",
		"hpcfail_snapshot_apply_seconds_count 1")

	var st struct {
		Watermark uint64 `json:"watermark"`
		Diagnosed uint64 `json:"diagnosed_watermark"`
		Staleness uint64 `json:"staleness_watermarks"`
	}
	if err := json.Unmarshal(get(t, h, "/healthz").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Watermark != 1 || st.Diagnosed != 1 || st.Staleness != 0 {
		t.Errorf("seeded healthz = %+v, want watermark 1 diagnosed 1 staleness 0", st)
	}

	// An unserved ingest leaves the snapshot one watermark behind.
	if _, err := s.Ingest([]IngestBatch{{Stream: "console", Lines: []string{
		"2015-03-03T08:00:00.000000Z c0-0c0s0n0 kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)",
	}}}); err != nil {
		t.Fatal(err)
	}
	mustContain("stale", get(t, h, "/metrics").Body.String(),
		"hpcfail_snapshot_staleness_watermarks 1")
	if err := json.Unmarshal(get(t, h, "/healthz").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Watermark != 2 || st.Diagnosed != 1 || st.Staleness != 1 {
		t.Errorf("stale healthz = %+v, want watermark 2 diagnosed 1 staleness 1", st)
	}

	// The first query applies the pending delta: staleness clears and the
	// apply lands on the histogram.
	if rec := get(t, h, "/v1/diagnose"); rec.Code != http.StatusOK {
		t.Fatalf("diagnose = %d", rec.Code)
	}
	mustContain("applied", get(t, h, "/metrics").Body.String(),
		"hpcfail_snapshot_staleness_watermarks 0",
		"hpcfail_snapshot_apply_seconds_count 2")
	if err := json.Unmarshal(get(t, h, "/healthz").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Watermark != 2 || st.Diagnosed != 2 || st.Staleness != 0 {
		t.Errorf("applied healthz = %+v, want watermark 2 diagnosed 2 staleness 0", st)
	}
}

// counter reads a metrics counter (test helper; production reads go
// through /metrics).
func (s *Server) counter(name string) uint64 {
	s.metrics.mu.Lock()
	defer s.metrics.mu.Unlock()
	return s.metrics.counters[name]
}
