package hpcfail

// Differential harness for the incremental diagnosis engine: over
// seeded corpora × chaos damage × randomized ingest schedules (batch
// sizes, out-of-order arrivals) × GOMAXPROCS, the engine's Snapshot
// after every single batch must be value-identical AND render
// byte-identical to a from-scratch batch pipeline run over the
// concatenated arrivals. Snapshots taken at earlier watermarks must
// also stay stable — re-rendering them after later batches mutated the
// engine must reproduce the exact bytes captured at their watermark.
// Run with -race; the acceptance gate is
//
//	go test -run TestIncrementalEquivalence -race .

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"hpcfail/internal/core"
	"hpcfail/internal/events"
	"hpcfail/internal/render"
	"hpcfail/internal/topology"
)

// perturbArrival returns a deterministically disordered copy of recs:
// each index has probability frac of swapping with a partner up to
// window positions ahead, producing out-of-order arrivals both inside
// batches and across batch boundaries.
func perturbArrival(recs []events.Record, rng *rand.Rand, frac float64, window int) []events.Record {
	out := make([]events.Record, len(recs))
	copy(out, recs)
	for i := range out {
		if rng.Float64() >= frac {
			continue
		}
		j := i + rng.Intn(window)
		if j >= len(out) {
			j = len(out) - 1
		}
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// splitBatches cuts the arrival sequence at n-1 uniformly random points
// — batch sizes vary wildly and empty batches occur naturally when two
// cuts coincide.
func splitBatches(recs []events.Record, rng *rand.Rand, n int) [][]events.Record {
	cuts := make([]int, 0, n+1)
	cuts = append(cuts, 0, len(recs))
	for i := 1; i < n; i++ {
		cuts = append(cuts, rng.Intn(len(recs)+1))
	}
	sort.Ints(cuts)
	out := make([][]events.Record, 0, n)
	for i := 1; i < len(cuts); i++ {
		out = append(out, recs[cuts[i-1]:cuts[i]])
	}
	return out
}

// renderPair renders the CLI text report (full) and the NDJSON form of
// a result — the byte surface /v1/diagnose serves.
func renderPair(t *testing.T, dir string, rep *IngestReport, res *Result) ([]byte, []byte) {
	t.Helper()
	var txt, js bytes.Buffer
	if err := render.Diagnose(&txt, dir, res.Store, rep, res, true); err != nil {
		t.Fatal(err)
	}
	if err := render.DiagnoseJSON(&js, res); err != nil {
		t.Fatal(err)
	}
	return txt.Bytes(), js.Bytes()
}

func TestIncrementalEquivalence(t *testing.T) {
	corpora := []equivCorpus{
		{name: "clean"},
		{name: "chaos-mixed", chaos: ChaosConfig{
			Drop: 0.05, Garble: 0.05, Truncate: 0.05, Duplicate: 0.05, Seed: 17}},
		{name: "degraded-no-scheduler", removeStreams: []events.Stream{events.StreamScheduler}},
	}
	for _, seed := range []uint64{5, 23} {
		scn := equivScenario(t, seed)
		for ci, c := range corpora {
			dir := c.write(t, scn)
			store, rep, err := LoadLogsReport(dir, topology.SchedulerSlurm)
			if err != nil {
				t.Fatal(err)
			}
			all := store.All()
			lost := rep.LostChunks()
			for gi, gmp := range []int{1, 2, 8} {
				t.Run(fmt.Sprintf("seed%d/%s/gomaxprocs%d", seed, c.name, gmp), func(t *testing.T) {
					old := runtime.GOMAXPROCS(gmp)
					defer runtime.GOMAXPROCS(old)

					// Distinct deterministic schedule per (seed, corpus,
					// gomaxprocs) leg.
					rng := rand.New(rand.NewSource(int64(seed)*4001 + int64(1000*ci+31*gi+7)))
					arrivals := perturbArrival(all, rng, 0.15, 96)
					batches := splitBatches(arrivals, rng, 8)

					eng := NewEngine()
					var arrived []Record
					type watermark struct {
						res      *Result
						txt, js  []byte
						detCount int
					}
					var wms []watermark
					for bi, b := range batches {
						eng.ApplyBatch(b)
						arrived = append(arrived, b...)
						got := eng.Snapshot(lost)
						want, err := core.RunContextReport(context.Background(),
							StoreRecords(arrived), DefaultPipelineConfig(), lost)
						if err != nil {
							t.Fatal(err)
						}
						func() {
							defer func() {
								if t.Failed() {
									t.Logf("diverged at watermark %d (batch of %d, %d arrived)",
										bi, len(b), len(arrived))
								}
							}()
							sameResults(t, got, want)
						}()
						gt, gj := renderPair(t, dir, rep, got)
						wt, wj := renderPair(t, dir, rep, want)
						if !bytes.Equal(gt, wt) {
							t.Fatalf("watermark %d: text render diverges from batch pipeline", bi)
						}
						if !bytes.Equal(gj, wj) {
							t.Fatalf("watermark %d: JSON render diverges from batch pipeline", bi)
						}
						wms = append(wms, watermark{res: got, txt: gt, js: gj, detCount: len(got.Detections)})
					}
					if n := wms[len(wms)-1].detCount; c.name == "clean" && n == 0 {
						t.Fatal("clean corpus yields no detections — property vacuous")
					}
					if eng.Len() != len(all) {
						t.Fatalf("engine holds %d records, corpus has %d", eng.Len(), len(all))
					}

					// Snapshot stability: every earlier watermark's Result must
					// re-render the exact bytes captured when it was taken, even
					// though the engine mutated through every later batch.
					for i, w := range wms {
						txt, js := renderPair(t, dir, rep, w.res)
						if !bytes.Equal(txt, w.txt) || !bytes.Equal(js, w.js) {
							t.Fatalf("watermark %d snapshot mutated by later batches", i)
						}
					}
				})
			}
		}
	}
}

// TestIncrementalSingleRecordBatches drives the engine one record at a
// time — the server's worst-case write mix — and checks against the
// batch pipeline at sampled watermarks (every record would square the
// runtime).
func TestIncrementalSingleRecordBatches(t *testing.T) {
	scn := equivScenario(t, 23)
	dir := equivCorpus{name: "clean"}.write(t, scn)
	store, _, err := LoadLogsReport(dir, topology.SchedulerSlurm)
	if err != nil {
		t.Fatal(err)
	}
	all := store.All()
	// A slice around the first detection keeps the leg fast but
	// failure-bearing.
	full, err := core.RunContextReport(context.Background(), StoreRecords(all), DefaultPipelineConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Detections) == 0 {
		t.Fatal("corpus yields no detections — test vacuous")
	}
	firstDet := full.Detections[0].Time
	lo, hi := 0, len(all)
	for i := range all {
		if all[i].Time.Before(firstDet.Add(-DefaultPipelineConfig().ExternalWindow)) {
			lo = i
		}
		if all[i].Time.Before(firstDet.Add(DefaultPipelineConfig().ExternalWindow)) {
			hi = i
		}
	}
	slice := all[lo:hi]
	if len(slice) > 4000 {
		slice = slice[:4000]
	}
	eng := NewEngine()
	for i := range slice {
		eng.ApplyBatch(slice[i : i+1])
		if i%500 != 499 && i != len(slice)-1 {
			continue
		}
		got := eng.Snapshot(0)
		want, err := core.RunContextReport(context.Background(),
			StoreRecords(slice[:i+1]), DefaultPipelineConfig(), 0)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, got, want)
	}
}
