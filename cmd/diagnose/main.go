// Command diagnose runs the holistic failure-diagnosis pipeline over a
// directory of raw logs (as produced by logsim or a compatible tool):
//
//	diagnose -logs ./logs -scheduler slurm
//
// It prints every detected node failure with its inferred root cause,
// job attribution and lead times, followed by summary breakdowns.
// -stream switches ingestion to the sharded streaming loader (bounded
// memory, parallel parse); output is identical either way.
//
// With -wal the streaming load checkpoints its progress into a
// write-ahead-logged journal, and SIGINT/SIGTERM stop it cleanly at a
// chunk boundary (partial ingest ledger on stderr, non-zero exit).
// A later invocation with -resume picks up from the last checkpoint and
// produces output identical to an uninterrupted run.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hpcfail"
	"hpcfail/internal/core"
	"hpcfail/internal/prof"
	"hpcfail/internal/report"
	"hpcfail/internal/topology"
)

// options carries the parsed command line.
type options struct {
	logs    string
	sched   string
	full    bool
	stream  bool
	workers int
	shards  int
	wal     string
	resume  bool
}

func main() {
	var (
		o          options
		jsonMode   bool
		cpuprofile string
		memprofile string
	)
	flag.StringVar(&o.logs, "logs", "logs", "log directory")
	flag.StringVar(&o.sched, "scheduler", "slurm", "scheduler dialect: slurm or torque")
	flag.BoolVar(&o.full, "full", false, "print per-failure evidence")
	flag.BoolVar(&jsonMode, "json", false, "emit one JSON object per diagnosis instead of tables")
	flag.BoolVar(&o.stream, "stream", false, "use the sharded streaming loader (same output, bounded memory)")
	flag.IntVar(&o.workers, "workers", 0, "streaming parse/diagnosis workers (0 = GOMAXPROCS)")
	flag.IntVar(&o.shards, "shards", 0, "store shard count (0 = default)")
	flag.StringVar(&o.wal, "wal", "", "checkpoint-journal directory (implies -stream; makes the load resumable)")
	flag.BoolVar(&o.resume, "resume", false, "resume an interrupted load from the -wal journal")
	flag.StringVar(&cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&memprofile, "memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(cpuprofile, memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if jsonMode {
		err = runJSON(ctx, o, os.Stdout, os.Stderr)
	} else {
		err = run(ctx, o, os.Stdout, os.Stderr)
	}
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
}

// load ingests the corpus via the loader the options select and runs
// the matching pipeline. The streaming path produces identical results
// to the sequential one — equivalence the test suite enforces. On an
// interrupted journaled load the partial ingest ledger is returned
// alongside the error so the caller can report progress.
func load(ctx context.Context, o options, st topology.SchedulerType) (*hpcfail.Store, *hpcfail.IngestReport, *hpcfail.Result, error) {
	if o.resume && o.wal == "" {
		return nil, nil, nil, fmt.Errorf("-resume requires -wal (the journal to resume from)")
	}
	if o.stream || o.wal != "" {
		sopts := hpcfail.StreamOptions{Workers: o.workers, Shards: o.shards}
		if o.wal != "" {
			j, err := hpcfail.OpenWAL(o.wal, hpcfail.WALOptions{})
			if err != nil {
				return nil, nil, nil, fmt.Errorf("open -wal journal: %w", err)
			}
			defer j.Close()
			sopts.Journal = j
		}
		var (
			ss  *hpcfail.ShardedStore
			rep *hpcfail.IngestReport
			err error
		)
		if o.resume {
			ss, rep, err = hpcfail.ResumeLogs(ctx, o.logs, st, sopts)
		} else {
			ss, rep, err = hpcfail.LoadLogsStreamContext(ctx, o.logs, st, sopts)
		}
		if err != nil {
			return nil, rep, nil, err
		}
		res := hpcfail.DiagnoseShardedReport(ss, rep, o.workers)
		return res.Store, rep, res, nil
	}
	store, rep, err := hpcfail.LoadLogsReport(o.logs, st)
	if err != nil {
		return nil, nil, nil, err
	}
	return store, rep, hpcfail.Diagnose(store), nil
}

// reportInterrupted prints the partial ingest ledger and the resume
// hint when a journaled load was stopped by a signal.
func reportInterrupted(err error, rep *hpcfail.IngestReport, o options, stderr io.Writer) {
	if !errors.Is(err, hpcfail.ErrInterrupted) {
		return
	}
	if rep != nil {
		fmt.Fprintln(stderr, "partial ingest at interruption:")
		fmt.Fprintln(stderr, rep.String())
	}
	if o.wal != "" {
		fmt.Fprintln(stderr, "progress checkpointed; rerun with -resume to continue from the journal")
	} else {
		fmt.Fprintln(stderr, "no -wal journal was set; a rerun starts from scratch")
	}
}

// runJSON emits machine-readable diagnoses, one JSON object per line.
func runJSON(ctx context.Context, o options, stdout, stderr io.Writer) error {
	st := topology.SchedulerSlurm
	if o.sched == "torque" {
		st = topology.SchedulerTorque
	}
	_, rep, res, err := load(ctx, o, st)
	if err != nil {
		reportInterrupted(err, rep, o, stderr)
		return err
	}
	for _, w := range rep.Warnings() {
		fmt.Fprintln(stderr, "warning:", w)
	}
	enc := json.NewEncoder(stdout)
	for _, d := range res.Diagnoses {
		lt := core.ComputeLeadTime(d)
		out := struct {
			Time         time.Time `json:"time"`
			Node         string    `json:"node"`
			Terminal     string    `json:"terminal"`
			Cause        string    `json:"cause"`
			Class        string    `json:"class"`
			AppTriggered bool      `json:"app_triggered"`
			JobID        int64     `json:"job_id,omitempty"`
			KeySymbol    string    `json:"key_symbol,omitempty"`
			Confidence   float64   `json:"confidence"`
			Degraded     bool      `json:"degraded,omitempty"`
			Note         string    `json:"note,omitempty"`
			InternalLead float64   `json:"internal_lead_sec,omitempty"`
			ExternalLead float64   `json:"external_lead_sec,omitempty"`
		}{
			Time: d.Detection.Time, Node: d.Detection.Node.String(),
			Terminal: d.Detection.Terminal, Cause: d.Cause.String(),
			Class: d.Class.String(), AppTriggered: d.AppTriggered,
			JobID: d.JobID, KeySymbol: d.KeySymbol, Confidence: d.Confidence,
			Degraded: d.Degraded, Note: d.Note,
			InternalLead: lt.Internal.Seconds(), ExternalLead: lt.External.Seconds(),
		}
		if err := enc.Encode(out); err != nil {
			return err
		}
	}
	return nil
}

func run(ctx context.Context, o options, stdout, stderr io.Writer) error {
	var st topology.SchedulerType
	switch o.sched {
	case "slurm":
		st = topology.SchedulerSlurm
	case "torque":
		st = topology.SchedulerTorque
	default:
		return fmt.Errorf("unknown scheduler %q (want slurm or torque)", o.sched)
	}
	store, rep, res, err := load(ctx, o, st)
	if err != nil {
		reportInterrupted(err, rep, o, stderr)
		return err
	}
	for i, w := range rep.Warnings() {
		if i >= 5 {
			fmt.Fprintf(stderr, "... and %d more ingest warnings\n", len(rep.Warnings())-5)
			break
		}
		fmt.Fprintln(stderr, "warning:", w)
	}
	first, last, ok := store.Span()
	if !ok {
		return fmt.Errorf("no records found under %s", o.logs)
	}
	fmt.Fprintf(stdout, "loaded %d records spanning %s .. %s\n", store.Len(), first.Format(time.RFC3339), last.Format(time.RFC3339))
	fmt.Fprintln(stdout, rep.String())

	if res.Degradation.Degraded() {
		fmt.Fprintf(stdout, "DEGRADED: %s (confidence scaled by %.2f)\n", res.Degradation.Note(), res.Degradation.Factor())
	}
	fmt.Fprintln(stdout)

	tbl := report.NewTable("Detected node failures",
		"time", "node", "terminal", "cause", "class", "app-triggered", "job", "int lead", "ext lead")
	for _, d := range res.Diagnoses {
		lt := core.ComputeLeadTime(d)
		job := "-"
		if d.JobID != 0 {
			job = fmt.Sprintf("%d", d.JobID)
		}
		ext := "-"
		if lt.External > 0 {
			ext = lt.External.Round(time.Second).String()
		}
		intl := "-"
		if lt.Internal > 0 {
			intl = lt.Internal.Round(time.Second).String()
		}
		tbl.AddRow(d.Detection.Time.Format("01-02 15:04:05"), d.Detection.Node.String(),
			d.Detection.Terminal, d.Cause.String(), d.Class.String(), d.AppTriggered, job, intl, ext)
	}
	fmt.Fprint(stdout, tbl.String())

	if o.full {
		for _, d := range res.Diagnoses {
			fmt.Fprintf(stdout, "\n%s %s — %s (confidence %.2f, key symbol %q)\n",
				d.Detection.Time.Format(time.RFC3339), d.Detection.Node, d.Cause, d.Confidence, d.KeySymbol)
			for _, ev := range d.InternalEvidence {
				fmt.Fprintf(stdout, "  internal: %s\n", ev.String())
			}
			for _, ev := range d.ExternalIndicators {
				fmt.Fprintf(stdout, "  external: %s\n", ev.String())
			}
		}
	}

	// Summaries.
	causes := map[string]float64{}
	for c, n := range res.CauseBreakdown() {
		causes[c.String()] = float64(n)
	}
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, report.Bars("Root-cause breakdown", causes, "failures").String())

	classes := map[string]float64{}
	for c, n := range res.ClassBreakdown() {
		classes[c.String()] = float64(n)
	}
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, report.Bars("Layer breakdown", classes, "failures").String())

	sum := hpcfail.SummarizeLeadTimes(res.Diagnoses)
	fmt.Fprintf(stdout, "\nlead times: %d/%d failures enhanceable (%s), mean factor %.1fx\n",
		sum.Enhanceable, sum.Total, report.Pct(sum.EnhanceableFraction()), sum.MeanFactor)

	mtbf := res.MTBF()
	if mtbf.N > 0 {
		fmt.Fprintf(stdout, "MTBF: %.1f ± %.1f minutes over %d gaps\n", mtbf.Mean, mtbf.Stddev, mtbf.N)
	}
	if dt := res.DowntimeSummary(); dt.N > 0 {
		fmt.Fprintf(stdout, "downtime: %.0f ± %.0f minutes per failure (%d rebooted in window; %.0f node-minutes lost)\n",
			dt.Mean, dt.Stddev, dt.N, dt.Mean*float64(dt.N))
	}

	// Table VI: findings -> recommendations, derived from the measured
	// behaviour of this log corpus.
	if recs := core.Recommend(res); len(recs) > 0 {
		fmt.Fprintln(stdout, "\nRecommendations (Table VI):")
		for _, r := range recs {
			fmt.Fprintf(stdout, "  [%d] %s\n      -> %s\n", r.Severity, r.Finding, r.Action)
		}
	}
	return nil
}
