// Command diagnose runs the holistic failure-diagnosis pipeline over a
// directory of raw logs (as produced by logsim or a compatible tool):
//
//	diagnose -logs ./logs -scheduler slurm
//
// It prints every detected node failure with its inferred root cause,
// job attribution and lead times, followed by summary breakdowns.
// -stream switches ingestion to the sharded streaming loader (bounded
// memory, parallel parse); output is identical either way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hpcfail"
	"hpcfail/internal/core"
	"hpcfail/internal/report"
	"hpcfail/internal/topology"
)

// options carries the parsed command line.
type options struct {
	logs    string
	sched   string
	full    bool
	stream  bool
	workers int
	shards  int
}

func main() {
	var (
		o        options
		jsonMode bool
	)
	flag.StringVar(&o.logs, "logs", "logs", "log directory")
	flag.StringVar(&o.sched, "scheduler", "slurm", "scheduler dialect: slurm or torque")
	flag.BoolVar(&o.full, "full", false, "print per-failure evidence")
	flag.BoolVar(&jsonMode, "json", false, "emit one JSON object per diagnosis instead of tables")
	flag.BoolVar(&o.stream, "stream", false, "use the sharded streaming loader (same output, bounded memory)")
	flag.IntVar(&o.workers, "workers", 0, "streaming parse/diagnosis workers (0 = GOMAXPROCS)")
	flag.IntVar(&o.shards, "shards", 0, "store shard count (0 = default)")
	flag.Parse()
	var err error
	if jsonMode {
		err = runJSON(o, os.Stdout, os.Stderr)
	} else {
		err = run(o, os.Stdout, os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
}

// load ingests the corpus via the loader the options select and runs
// the matching pipeline. The streaming path produces identical results
// to the sequential one — equivalence the test suite enforces.
func load(o options, st topology.SchedulerType) (*hpcfail.Store, *hpcfail.IngestReport, *hpcfail.Result, error) {
	if o.stream {
		ss, rep, err := hpcfail.LoadLogsStream(o.logs, st,
			hpcfail.StreamOptions{Workers: o.workers, Shards: o.shards})
		if err != nil {
			return nil, nil, nil, err
		}
		res := hpcfail.DiagnoseSharded(ss, o.workers)
		return res.Store, rep, res, nil
	}
	store, rep, err := hpcfail.LoadLogsReport(o.logs, st)
	if err != nil {
		return nil, nil, nil, err
	}
	return store, rep, hpcfail.Diagnose(store), nil
}

// runJSON emits machine-readable diagnoses, one JSON object per line.
func runJSON(o options, stdout, stderr io.Writer) error {
	st := topology.SchedulerSlurm
	if o.sched == "torque" {
		st = topology.SchedulerTorque
	}
	_, rep, res, err := load(o, st)
	if err != nil {
		return err
	}
	for _, w := range rep.Warnings() {
		fmt.Fprintln(stderr, "warning:", w)
	}
	enc := json.NewEncoder(stdout)
	for _, d := range res.Diagnoses {
		lt := core.ComputeLeadTime(d)
		out := struct {
			Time         time.Time `json:"time"`
			Node         string    `json:"node"`
			Terminal     string    `json:"terminal"`
			Cause        string    `json:"cause"`
			Class        string    `json:"class"`
			AppTriggered bool      `json:"app_triggered"`
			JobID        int64     `json:"job_id,omitempty"`
			KeySymbol    string    `json:"key_symbol,omitempty"`
			Confidence   float64   `json:"confidence"`
			Degraded     bool      `json:"degraded,omitempty"`
			Note         string    `json:"note,omitempty"`
			InternalLead float64   `json:"internal_lead_sec,omitempty"`
			ExternalLead float64   `json:"external_lead_sec,omitempty"`
		}{
			Time: d.Detection.Time, Node: d.Detection.Node.String(),
			Terminal: d.Detection.Terminal, Cause: d.Cause.String(),
			Class: d.Class.String(), AppTriggered: d.AppTriggered,
			JobID: d.JobID, KeySymbol: d.KeySymbol, Confidence: d.Confidence,
			Degraded: d.Degraded, Note: d.Note,
			InternalLead: lt.Internal.Seconds(), ExternalLead: lt.External.Seconds(),
		}
		if err := enc.Encode(out); err != nil {
			return err
		}
	}
	return nil
}

func run(o options, stdout, stderr io.Writer) error {
	var st topology.SchedulerType
	switch o.sched {
	case "slurm":
		st = topology.SchedulerSlurm
	case "torque":
		st = topology.SchedulerTorque
	default:
		return fmt.Errorf("unknown scheduler %q (want slurm or torque)", o.sched)
	}
	store, rep, res, err := load(o, st)
	if err != nil {
		return err
	}
	for i, w := range rep.Warnings() {
		if i >= 5 {
			fmt.Fprintf(stderr, "... and %d more ingest warnings\n", len(rep.Warnings())-5)
			break
		}
		fmt.Fprintln(stderr, "warning:", w)
	}
	first, last, ok := store.Span()
	if !ok {
		return fmt.Errorf("no records found under %s", o.logs)
	}
	fmt.Fprintf(stdout, "loaded %d records spanning %s .. %s\n", store.Len(), first.Format(time.RFC3339), last.Format(time.RFC3339))
	fmt.Fprintln(stdout, rep.String())

	if res.Degradation.Degraded() {
		fmt.Fprintf(stdout, "DEGRADED: %s (confidence scaled by %.2f)\n", res.Degradation.Note(), res.Degradation.Factor())
	}
	fmt.Fprintln(stdout)

	tbl := report.NewTable("Detected node failures",
		"time", "node", "terminal", "cause", "class", "app-triggered", "job", "int lead", "ext lead")
	for _, d := range res.Diagnoses {
		lt := core.ComputeLeadTime(d)
		job := "-"
		if d.JobID != 0 {
			job = fmt.Sprintf("%d", d.JobID)
		}
		ext := "-"
		if lt.External > 0 {
			ext = lt.External.Round(time.Second).String()
		}
		intl := "-"
		if lt.Internal > 0 {
			intl = lt.Internal.Round(time.Second).String()
		}
		tbl.AddRow(d.Detection.Time.Format("01-02 15:04:05"), d.Detection.Node.String(),
			d.Detection.Terminal, d.Cause.String(), d.Class.String(), d.AppTriggered, job, intl, ext)
	}
	fmt.Fprint(stdout, tbl.String())

	if o.full {
		for _, d := range res.Diagnoses {
			fmt.Fprintf(stdout, "\n%s %s — %s (confidence %.2f, key symbol %q)\n",
				d.Detection.Time.Format(time.RFC3339), d.Detection.Node, d.Cause, d.Confidence, d.KeySymbol)
			for _, ev := range d.InternalEvidence {
				fmt.Fprintf(stdout, "  internal: %s\n", ev.String())
			}
			for _, ev := range d.ExternalIndicators {
				fmt.Fprintf(stdout, "  external: %s\n", ev.String())
			}
		}
	}

	// Summaries.
	causes := map[string]float64{}
	for c, n := range res.CauseBreakdown() {
		causes[c.String()] = float64(n)
	}
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, report.Bars("Root-cause breakdown", causes, "failures").String())

	classes := map[string]float64{}
	for c, n := range res.ClassBreakdown() {
		classes[c.String()] = float64(n)
	}
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, report.Bars("Layer breakdown", classes, "failures").String())

	sum := hpcfail.SummarizeLeadTimes(res.Diagnoses)
	fmt.Fprintf(stdout, "\nlead times: %d/%d failures enhanceable (%s), mean factor %.1fx\n",
		sum.Enhanceable, sum.Total, report.Pct(sum.EnhanceableFraction()), sum.MeanFactor)

	mtbf := res.MTBF()
	if mtbf.N > 0 {
		fmt.Fprintf(stdout, "MTBF: %.1f ± %.1f minutes over %d gaps\n", mtbf.Mean, mtbf.Stddev, mtbf.N)
	}
	if dt := res.DowntimeSummary(); dt.N > 0 {
		fmt.Fprintf(stdout, "downtime: %.0f ± %.0f minutes per failure (%d rebooted in window; %.0f node-minutes lost)\n",
			dt.Mean, dt.Stddev, dt.N, dt.Mean*float64(dt.N))
	}

	// Table VI: findings -> recommendations, derived from the measured
	// behaviour of this log corpus.
	if recs := core.Recommend(res); len(recs) > 0 {
		fmt.Fprintln(stdout, "\nRecommendations (Table VI):")
		for _, r := range recs {
			fmt.Fprintf(stdout, "  [%d] %s\n      -> %s\n", r.Severity, r.Finding, r.Action)
		}
	}
	return nil
}
