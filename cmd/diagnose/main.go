// Command diagnose runs the holistic failure-diagnosis pipeline over a
// directory of raw logs (as produced by logsim or a compatible tool):
//
//	diagnose -logs ./logs -scheduler slurm
//
// It prints every detected node failure with its inferred root cause,
// job attribution and lead times, followed by summary breakdowns.
// -stream switches ingestion to the sharded streaming loader (bounded
// memory, parallel parse); output is identical either way.
//
// With -wal the streaming load checkpoints its progress into a
// write-ahead-logged journal, and SIGINT/SIGTERM stop it cleanly at a
// chunk boundary (partial ingest ledger on stderr, non-zero exit).
// A later invocation with -resume picks up from the last checkpoint and
// produces output identical to an uninterrupted run.
//
// -mine appends a template-mining section: the lines the static
// profiles rejected (quarantined or unclassified), clustered online
// into templates with promoted candidate signatures starred. The
// report above the section stays byte-identical to a run without it.
// -mined-profile loads a profile previously exported by cmd/minectl or
// GET /v1/templates?format=profile and reclaims the quarantined lines
// it covers as classified records (sequential loader only).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"hpcfail"
	"hpcfail/internal/prof"
	"hpcfail/internal/render"
	"hpcfail/internal/topology"
	"hpcfail/internal/version"
)

// options carries the parsed command line.
type options struct {
	logs    string
	sched   string
	full    bool
	stream  bool
	workers int
	shards  int
	wal     string
	resume  bool
	mine    bool
	profile string
}

func main() {
	var (
		o          options
		jsonMode   bool
		cpuprofile string
		memprofile string
		showVer    bool
	)
	flag.StringVar(&o.logs, "logs", "logs", "log directory")
	flag.StringVar(&o.sched, "scheduler", "slurm", "scheduler dialect: slurm or torque")
	flag.BoolVar(&o.full, "full", false, "print per-failure evidence")
	flag.BoolVar(&jsonMode, "json", false, "emit one JSON object per diagnosis instead of tables")
	flag.BoolVar(&o.stream, "stream", false, "use the sharded streaming loader (same output, bounded memory)")
	flag.IntVar(&o.workers, "workers", 0, "streaming parse/diagnosis workers (0 = GOMAXPROCS)")
	flag.IntVar(&o.shards, "shards", 0, "store shard count (0 = default)")
	flag.StringVar(&o.wal, "wal", "", "checkpoint-journal directory (implies -stream; makes the load resumable)")
	flag.BoolVar(&o.resume, "resume", false, "resume an interrupted load from the -wal journal")
	flag.BoolVar(&o.mine, "mine", false, "append a mined-template report over quarantined/unclassified lines")
	flag.StringVar(&o.profile, "mined-profile", "", "mined profile JSON; reclaims quarantined lines it classifies (sequential loader only)")
	flag.StringVar(&cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&memprofile, "memprofile", "", "write a heap profile to this file on exit")
	flag.BoolVar(&showVer, "version", false, "print build version and exit")
	flag.Parse()
	if showVer {
		version.Print(os.Stdout, "diagnose")
		return
	}

	stopProf, err := prof.Start(cpuprofile, memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if jsonMode {
		err = runJSON(ctx, o, os.Stdout, os.Stderr)
	} else {
		err = run(ctx, o, os.Stdout, os.Stderr)
	}
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
}

// load ingests the corpus via the loader the options select and runs
// the matching pipeline. The streaming path produces identical results
// to the sequential one — equivalence the test suite enforces. On an
// interrupted journaled load the partial ingest ledger is returned
// alongside the error so the caller can report progress.
func load(ctx context.Context, o options, st topology.SchedulerType) (*hpcfail.Store, *hpcfail.IngestReport, *hpcfail.Result, error) {
	if o.resume && o.wal == "" {
		return nil, nil, nil, fmt.Errorf("-resume requires -wal (the journal to resume from)")
	}
	if o.profile != "" && (o.stream || o.wal != "") {
		return nil, nil, nil, fmt.Errorf("-mined-profile requires the sequential loader (drop -stream/-wal)")
	}
	if o.stream || o.wal != "" {
		sopts := hpcfail.StreamOptions{Workers: o.workers, Shards: o.shards}
		if o.wal != "" {
			j, err := hpcfail.OpenWAL(o.wal, hpcfail.WALOptions{})
			if err != nil {
				return nil, nil, nil, fmt.Errorf("open -wal journal: %w", err)
			}
			defer j.Close()
			sopts.Journal = j
		}
		var (
			ss  *hpcfail.ShardedStore
			rep *hpcfail.IngestReport
			err error
		)
		if o.resume {
			ss, rep, err = hpcfail.ResumeLogs(ctx, o.logs, st, sopts)
		} else {
			ss, rep, err = hpcfail.LoadLogsStreamContext(ctx, o.logs, st, sopts)
		}
		if err != nil {
			return nil, rep, nil, err
		}
		res := hpcfail.DiagnoseShardedReport(ss, rep, o.workers)
		return res.Store, rep, res, nil
	}
	var mc hpcfail.MinedClassifier
	if o.profile != "" {
		data, err := os.ReadFile(o.profile)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("read -mined-profile: %w", err)
		}
		p, err := hpcfail.DecodeMinedProfile(data)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("decode -mined-profile: %w", err)
		}
		mc = hpcfail.NewMinedMatcher(p)
	}
	store, rep, err := hpcfail.LoadLogsReportMined(o.logs, st, mc)
	if err != nil {
		return nil, nil, nil, err
	}
	return store, rep, hpcfail.Diagnose(store), nil
}

// mineCorpus clusters everything the load could not classify — the full
// quarantine stream of every file plus records no static pattern
// matched — and returns the miner for rendering.
func mineCorpus(store *hpcfail.Store, rep *hpcfail.IngestReport) *hpcfail.TemplateMiner {
	m := hpcfail.NewMiner(hpcfail.MinerConfig{})
	for i := range rep.Streams {
		rep.Streams[i].EachQuarantined(m.Ingest)
	}
	for _, r := range store.All() {
		if r.Category == "unclassified" && r.Msg != "" {
			m.Ingest(r.Msg)
		}
	}
	return m
}

// resumeHint is the guidance printed after an interrupted load.
func resumeHint(o options) string {
	if o.wal != "" {
		return "progress checkpointed; rerun with -resume to continue from the journal"
	}
	return "no -wal journal was set; a rerun starts from scratch"
}

// runJSON emits machine-readable diagnoses, one JSON object per line.
func runJSON(ctx context.Context, o options, stdout, stderr io.Writer) error {
	st := topology.SchedulerSlurm
	if o.sched == "torque" {
		st = topology.SchedulerTorque
	}
	_, rep, res, err := load(ctx, o, st)
	if err != nil {
		render.Interrupted(stderr, err, rep, resumeHint(o))
		return err
	}
	render.Warnings(stderr, rep.Warnings(), 0)
	return render.DiagnoseJSON(stdout, res)
}

func run(ctx context.Context, o options, stdout, stderr io.Writer) error {
	var st topology.SchedulerType
	switch o.sched {
	case "slurm":
		st = topology.SchedulerSlurm
	case "torque":
		st = topology.SchedulerTorque
	default:
		return fmt.Errorf("unknown scheduler %q (want slurm or torque)", o.sched)
	}
	store, rep, res, err := load(ctx, o, st)
	if err != nil {
		render.Interrupted(stderr, err, rep, resumeHint(o))
		return err
	}
	render.Warnings(stderr, rep.Warnings(), 5)
	if err := render.Diagnose(stdout, o.logs, store, rep, res, o.full); err != nil {
		return err
	}
	if o.mine {
		m := mineCorpus(store, rep)
		views, _ := m.TemplatesSince(0, 0)
		render.MinedTemplates(stdout, m.Stats(), views)
	}
	return nil
}
