package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hpcfail"
	"hpcfail/internal/topology"
)

func writeTestLogs(t *testing.T) string {
	t.Helper()
	p, err := hpcfail.SystemProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec.Nodes = 384
	p.Spec.CabinetCols = 2
	p.FloodBladeIdx = nil
	p.FloodStopIdx = -1
	p.Workload.MeanInterarrival = 30 * time.Minute
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scn, err := hpcfail.Simulate(p, start, start.AddDate(0, 0, 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "logs")
	if err := hpcfail.WriteLogs(dir, scn); err != nil {
		t.Fatal(err)
	}
	return dir
}

func opts(dir string) options { return options{logs: dir, sched: "slurm"} }

func TestRunDiagnose(t *testing.T) {
	ctx := context.Background()
	dir := writeTestLogs(t)
	if err := run(ctx, opts(dir), io.Discard, io.Discard); err != nil {
		t.Fatalf("run: %v", err)
	}
	o := opts(dir)
	o.full = true
	if err := run(ctx, o, io.Discard, io.Discard); err != nil {
		t.Fatalf("run -full: %v", err)
	}
	o = opts(dir)
	o.stream = true
	o.workers = 3
	if err := run(ctx, o, io.Discard, io.Discard); err != nil {
		t.Fatalf("run -stream: %v", err)
	}
}

func TestRunDiagnoseErrors(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, opts(t.TempDir()), io.Discard, io.Discard); err == nil {
		t.Error("empty directory should error")
	}
	o := opts(writeTestLogs(t))
	o.sched = "pbspro"
	if err := run(ctx, o, io.Discard, io.Discard); err == nil {
		t.Error("unknown scheduler should error")
	}
	o = opts(writeTestLogs(t))
	o.resume = true
	if err := run(ctx, o, io.Discard, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-resume requires -wal") {
		t.Errorf("-resume without -wal should error, got %v", err)
	}
}

func TestRunJSON(t *testing.T) {
	dir := writeTestLogs(t)
	if err := runJSON(context.Background(), opts(dir), io.Discard, io.Discard); err != nil {
		t.Fatalf("runJSON: %v", err)
	}
}

func TestRunDiagnoseDegraded(t *testing.T) {
	ctx := context.Background()
	dir := writeTestLogs(t)
	// Kill the external and scheduler voices; diagnosis must degrade, not die.
	for _, f := range []string{"erd.log", "controller-bc.log", "controller-cc.log"} {
		if err := os.Remove(filepath.Join(dir, f)); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "scheduler.log"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, opts(dir), io.Discard, io.Discard); err != nil {
		t.Fatalf("degraded run: %v", err)
	}
	if err := runJSON(ctx, opts(dir), io.Discard, io.Discard); err != nil {
		t.Fatalf("degraded runJSON: %v", err)
	}
}

// TestRunDiagnoseWALCompletes: a journaled run completes and its output
// matches the plain streaming run byte for byte.
func TestRunDiagnoseWALCompletes(t *testing.T) {
	ctx := context.Background()
	dir := writeTestLogs(t)
	render := func(o options) string {
		t.Helper()
		var buf bytes.Buffer
		if err := run(ctx, o, &buf, io.Discard); err != nil {
			t.Fatalf("run %+v: %v", o, err)
		}
		return buf.String()
	}
	o := opts(dir)
	o.stream = true
	o.workers = 2
	want := render(o)
	o.wal = filepath.Join(t.TempDir(), "wal")
	if got := render(o); got != want {
		t.Errorf("journaled output diverges from plain -stream (%d vs %d bytes)", len(got), len(want))
	}
	// The journal completed; -resume replays it and must match again.
	o.resume = true
	if got := render(o); got != want {
		t.Errorf("-resume over a completed journal diverges (%d vs %d bytes)", len(got), len(want))
	}
}

// TestRunDiagnoseResumeAfterKill: kill a journaled load mid-flight (via
// the library's chunk hook, the deterministic stand-in for SIGTERM),
// then run the command with -resume — output must be identical to an
// uninterrupted run.
func TestRunDiagnoseResumeAfterKill(t *testing.T) {
	ctx := context.Background()
	dir := writeTestLogs(t)

	var want bytes.Buffer
	o := opts(dir)
	o.stream = true
	o.workers = 2
	if err := run(ctx, o, &want, io.Discard); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	walDir := filepath.Join(t.TempDir(), "wal")
	j, err := hpcfail.OpenWAL(walDir, hpcfail.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	kctx, cancel := context.WithCancel(ctx)
	defer cancel()
	chunks := 0
	_, rep, err := hpcfail.LoadLogsStreamContext(kctx, dir, topology.SchedulerSlurm, hpcfail.StreamOptions{
		Workers: 2, ChunkLines: 100, Journal: j,
		OnChunk: func(string, int) {
			if chunks++; chunks == 5 {
				cancel()
			}
		},
	})
	if !errors.Is(err, hpcfail.ErrInterrupted) {
		t.Fatalf("kill run: want ErrInterrupted, got %v", err)
	}
	if rep == nil {
		t.Fatal("interrupted load returned no partial report")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	o.wal = walDir
	o.resume = true
	var got, noise bytes.Buffer
	if err := run(ctx, o, &got, &noise); err != nil {
		t.Fatalf("resume run: %v\nstderr: %s", err, noise.String())
	}
	if got.String() != want.String() {
		t.Errorf("resumed output diverges from uninterrupted run (%d vs %d bytes)\n--- got ---\n%s",
			got.Len(), want.Len(), got.String())
	}
}

// TestRunDiagnoseInterruptedMessaging: an interrupted run surfaces the
// partial ledger and the resume hint on stderr and returns the
// interruption (non-zero exit in main).
func TestRunDiagnoseInterruptedMessaging(t *testing.T) {
	dir := writeTestLogs(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already interrupted before the first chunk
	o := opts(dir)
	o.stream = true
	o.wal = filepath.Join(t.TempDir(), "wal")
	var errOut bytes.Buffer
	err := run(ctx, o, io.Discard, &errOut)
	if !errors.Is(err, hpcfail.ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if !strings.Contains(errOut.String(), "rerun with -resume") {
		t.Errorf("stderr lacks resume hint:\n%s", errOut.String())
	}
}
