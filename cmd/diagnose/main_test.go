package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hpcfail"
)

func writeTestLogs(t *testing.T) string {
	t.Helper()
	p, err := hpcfail.SystemProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec.Nodes = 384
	p.Spec.CabinetCols = 2
	p.FloodBladeIdx = nil
	p.FloodStopIdx = -1
	p.Workload.MeanInterarrival = 30 * time.Minute
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scn, err := hpcfail.Simulate(p, start, start.AddDate(0, 0, 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "logs")
	if err := hpcfail.WriteLogs(dir, scn); err != nil {
		t.Fatal(err)
	}
	return dir
}

func opts(dir string) options { return options{logs: dir, sched: "slurm"} }

func TestRunDiagnose(t *testing.T) {
	dir := writeTestLogs(t)
	if err := run(opts(dir), io.Discard, io.Discard); err != nil {
		t.Fatalf("run: %v", err)
	}
	o := opts(dir)
	o.full = true
	if err := run(o, io.Discard, io.Discard); err != nil {
		t.Fatalf("run -full: %v", err)
	}
	o = opts(dir)
	o.stream = true
	o.workers = 3
	if err := run(o, io.Discard, io.Discard); err != nil {
		t.Fatalf("run -stream: %v", err)
	}
}

func TestRunDiagnoseErrors(t *testing.T) {
	if err := run(opts(t.TempDir()), io.Discard, io.Discard); err == nil {
		t.Error("empty directory should error")
	}
	o := opts(writeTestLogs(t))
	o.sched = "pbspro"
	if err := run(o, io.Discard, io.Discard); err == nil {
		t.Error("unknown scheduler should error")
	}
}

func TestRunJSON(t *testing.T) {
	dir := writeTestLogs(t)
	if err := runJSON(opts(dir), io.Discard, io.Discard); err != nil {
		t.Fatalf("runJSON: %v", err)
	}
}

func TestRunDiagnoseDegraded(t *testing.T) {
	dir := writeTestLogs(t)
	// Kill the external and scheduler voices; diagnosis must degrade, not die.
	for _, f := range []string{"erd.log", "controller-bc.log", "controller-cc.log"} {
		if err := os.Remove(filepath.Join(dir, f)); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "scheduler.log"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(opts(dir), io.Discard, io.Discard); err != nil {
		t.Fatalf("degraded run: %v", err)
	}
	if err := runJSON(opts(dir), io.Discard, io.Discard); err != nil {
		t.Fatalf("degraded runJSON: %v", err)
	}
}
