package main

// Golden-output tests over the committed fixture corpora in
// ../../testdata. Regenerate expectations after an intentional output
// change with:
//
//	go test ./cmd/diagnose -update
//
// Every case runs twice — sequential loader and -stream — and the
// streaming output must match the sequential golden byte for byte.

import (
	"bytes"
	"context"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

const (
	fixtureClean    = "../../testdata/corpus-clean"
	fixtureDegraded = "../../testdata/corpus-degraded"
)

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output diverges from %s (got %d bytes, want %d)\n--- got ---\n%s",
			path, len(got), len(want), got)
	}
}

func TestGoldenDiagnose(t *testing.T) {
	cases := []struct {
		name     string
		o        options
		json     bool
		wantNote string // substring the output must contain ("" = none)
	}{
		{name: "diagnose-clean", o: options{logs: fixtureClean, sched: "slurm"}},
		{name: "diagnose-full", o: options{logs: fixtureClean, sched: "slurm", full: true}},
		{name: "diagnose-json", o: options{logs: fixtureClean, sched: "slurm"}, json: true},
		{name: "diagnose-degraded", o: options{logs: fixtureDegraded, sched: "slurm"},
			wantNote: "DEGRADED: degraded input: scheduler log absent"},
		{name: "diagnose-degraded-json", o: options{logs: fixtureDegraded, sched: "slurm"},
			json: true, wantNote: `"degraded":true`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			render := func(o options) []byte {
				var buf bytes.Buffer
				var err error
				if c.json {
					err = runJSON(context.Background(), o, &buf, io.Discard)
				} else {
					err = run(context.Background(), o, &buf, io.Discard)
				}
				if err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			seq := render(c.o)
			if c.wantNote != "" && !bytes.Contains(seq, []byte(c.wantNote)) {
				t.Errorf("output lacks expected note %q", c.wantNote)
			}
			checkGolden(t, c.name, seq)

			streamed := c.o
			streamed.stream = true
			streamed.workers = 3
			streamed.shards = 4
			if got := render(streamed); !bytes.Equal(got, seq) {
				t.Errorf("-stream output diverges from sequential (%d vs %d bytes)", len(got), len(seq))
			}
		})
	}
}
