package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark measurement: the iteration count plus every
// "value unit" metric pair from the bench line, keyed by the baseline
// JSON spelling (ns/op → ns_per_op, B/op → B_per_op, …).
type Entry struct {
	Name       string
	Iterations int64
	Values     map[string]float64
}

// Baseline is the recorded reference run (the BENCH_pr*.json format).
type Baseline struct {
	Note       string
	Goos       string
	Goarch     string
	CPU        string
	Benchmarks []Entry
}

var benchName = regexp.MustCompile(`^Benchmark[A-Z_a-z0-9/]*$`)

// canonUnit maps bench-output units to baseline JSON keys.
func canonUnit(u string) string {
	switch u {
	case "ns/op":
		return "ns_per_op"
	case "B/op":
		return "B_per_op"
	case "allocs/op":
		return "allocs_per_op"
	}
	return strings.ReplaceAll(u, "/", "_per_")
}

// ParseBenchLine parses one `go test -bench` result line. The
// GOMAXPROCS suffix (BenchmarkFoo-8) is stripped so runs from machines
// with different core counts compare. ok is false for non-benchmark
// lines (pkg headers, PASS, ok …).
func ParseBenchLine(line string) (Entry, bool) {
	f := strings.Fields(line)
	if len(f) < 3 || !strings.HasPrefix(f[0], "Benchmark") {
		return Entry{}, false
	}
	name := f[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if !benchName.MatchString(name) {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: name, Iterations: iters, Values: make(map[string]float64)}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Entry{}, false
		}
		e.Values[canonUnit(f[i+1])] = v
	}
	if len(e.Values) == 0 {
		return Entry{}, false
	}
	return e, true
}

// ParseBenchOutput collects every benchmark line in the stream. A
// benchmark that appears twice (same name from two packages) keeps the
// first measurement and reports the duplicate as an error, since the
// baseline format cannot distinguish them.
func ParseBenchOutput(r io.Reader) ([]Entry, error) {
	var out []Entry
	seen := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		e, ok := ParseBenchLine(sc.Text())
		if !ok {
			continue
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("duplicate benchmark %s in input", e.Name)
		}
		seen[e.Name] = true
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadBaseline loads a BENCH_pr*.json reference run.
func ReadBaseline(path string) (Baseline, error) {
	var bl Baseline
	blob, err := os.ReadFile(path)
	if err != nil {
		return bl, err
	}
	var raw struct {
		Note       string            `json:"note"`
		Goos       string            `json:"goos"`
		Goarch     string            `json:"goarch"`
		CPU        string            `json:"cpu"`
		Benchmarks []json.RawMessage `json:"benchmarks"`
	}
	if err := json.Unmarshal(blob, &raw); err != nil {
		return bl, fmt.Errorf("%s: %w", path, err)
	}
	bl.Note, bl.Goos, bl.Goarch, bl.CPU = raw.Note, raw.Goos, raw.Goarch, raw.CPU
	for _, rm := range raw.Benchmarks {
		var m map[string]any
		if err := json.Unmarshal(rm, &m); err != nil {
			return bl, fmt.Errorf("%s: %w", path, err)
		}
		e := Entry{Values: make(map[string]float64)}
		for k, v := range m {
			switch k {
			case "name":
				e.Name, _ = v.(string)
			case "iterations":
				if f, ok := v.(float64); ok {
					e.Iterations = int64(f)
				}
			default:
				if f, ok := v.(float64); ok {
					e.Values[k] = f
				}
			}
		}
		if e.Name == "" {
			return bl, fmt.Errorf("%s: benchmark entry without name", path)
		}
		bl.Benchmarks = append(bl.Benchmarks, e)
	}
	return bl, nil
}

// WriteBaseline records a reference run, keeping the metric key order
// stable (ns_per_op, B_per_op, allocs_per_op, then extras sorted) so
// diffs between recorded runs stay readable.
func WriteBaseline(path string, bl Baseline) error {
	var b strings.Builder
	b.WriteString("{\n")
	fmt.Fprintf(&b, "  %s: %s,\n", jstr("note"), jstr(bl.Note))
	fmt.Fprintf(&b, "  %s: %s,\n", jstr("goos"), jstr(bl.Goos))
	fmt.Fprintf(&b, "  %s: %s,\n", jstr("goarch"), jstr(bl.Goarch))
	fmt.Fprintf(&b, "  %s: %s,\n", jstr("cpu"), jstr(bl.CPU))
	b.WriteString("  \"benchmarks\": [\n")
	for i, e := range bl.Benchmarks {
		fmt.Fprintf(&b, "    {\"name\": %s, \"iterations\": %d", jstr(e.Name), e.Iterations)
		rest := make(map[string]float64, len(e.Values))
		for k, v := range e.Values {
			rest[k] = v
		}
		for _, k := range []string{"ns_per_op", "B_per_op", "allocs_per_op"} {
			if v, ok := rest[k]; ok {
				fmt.Fprintf(&b, ", %s: %s", jstr(k), jnum(v))
				delete(rest, k)
			}
		}
		for _, k := range sortedKeys(rest) {
			fmt.Fprintf(&b, ", %s: %s", jstr(k), jnum(rest[k]))
		}
		b.WriteString("}")
		if i < len(bl.Benchmarks)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("  ]\n}\n")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func jstr(s string) string {
	blob, _ := json.Marshal(s)
	return string(blob)
}

func jnum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Gate holds the regression thresholds.
type Gate struct {
	// MaxTimeRatio fails a benchmark whose ns/op exceeds
	// baseline*MaxTimeRatio (generous: baselines are recorded on
	// different hardware than CI).
	MaxTimeRatio float64
	// MaxAllocRatio fails a benchmark whose allocs/op exceeds
	// baseline*MaxAllocRatio (tight: allocation counts are
	// hardware-independent).
	MaxAllocRatio float64
	// AllocLenient names benchmarks whose allocs gate at MaxTimeRatio
	// instead (parallel paths allocate per worker).
	AllocLenient *regexp.Regexp
	// RequireAll fails when a baseline benchmark is absent from input.
	RequireAll bool
}

// Row is one comparison line.
type Row struct {
	Name                 string
	OldNs, NewNs         float64 // 0 when absent
	OldAllocs, NewAllocs float64
	HasAllocs            bool
	Verdict              string
}

// Report is the comparison outcome.
type Report struct {
	Rows     []Row
	Failures []string
}

// Compare checks measured results against the baseline.
func Compare(bl Baseline, measured []Entry, g Gate) *Report {
	rep := &Report{}
	got := make(map[string]Entry, len(measured))
	for _, e := range measured {
		got[e.Name] = e
	}
	base := make(map[string]Entry, len(bl.Benchmarks))
	for _, e := range bl.Benchmarks {
		base[e.Name] = e
		m, ok := got[e.Name]
		if !ok {
			if g.RequireAll {
				rep.Failures = append(rep.Failures, fmt.Sprintf("%s: in baseline but not measured", e.Name))
			}
			rep.Rows = append(rep.Rows, Row{Name: e.Name, OldNs: e.Values["ns_per_op"], Verdict: "missing"})
			continue
		}
		row := Row{
			Name:  e.Name,
			OldNs: e.Values["ns_per_op"], NewNs: m.Values["ns_per_op"],
			Verdict: "ok",
		}
		if ba, bok := e.Values["allocs_per_op"]; bok {
			if ma, mok := m.Values["allocs_per_op"]; mok {
				row.OldAllocs, row.NewAllocs, row.HasAllocs = ba, ma, true
			}
		}
		if row.OldNs > 0 && g.MaxTimeRatio > 0 && row.NewNs > row.OldNs*g.MaxTimeRatio {
			row.Verdict = "TIME"
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s: ns/op %.0f vs baseline %.0f (%.2fx > %.2fx)",
				e.Name, row.NewNs, row.OldNs, row.NewNs/row.OldNs, g.MaxTimeRatio))
		}
		if row.HasAllocs && row.OldAllocs > 0 {
			tol := g.MaxAllocRatio
			if g.AllocLenient != nil && g.AllocLenient.MatchString(e.Name) {
				tol = g.MaxTimeRatio
			}
			if tol > 0 && row.NewAllocs > row.OldAllocs*tol {
				row.Verdict = "ALLOCS"
				rep.Failures = append(rep.Failures, fmt.Sprintf("%s: allocs/op %.0f vs baseline %.0f (%.2fx > %.2fx)",
					e.Name, row.NewAllocs, row.OldAllocs, row.NewAllocs/row.OldAllocs, tol))
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	for _, e := range measured {
		if _, ok := base[e.Name]; !ok {
			rep.Rows = append(rep.Rows, Row{Name: e.Name, NewNs: e.Values["ns_per_op"], Verdict: "new"})
		}
	}
	return rep
}

// Speedup is a required ratio between two benchmarks measured in the
// same run: ns/op(Slow) must be at least Min × ns/op(Fast). Unlike the
// baseline ratios, both sides come from the same machine in the same
// invocation, so the gate is hardware-independent — it pins a scaling
// property (group commit: parallel durable ingest must beat the
// serialized writer by the amortization factor), not a wall-clock.
type Speedup struct {
	Slow, Fast string
	Min        float64
}

// ParseSpeedups parses a comma-separated list of SLOW:FAST:MIN specs.
func ParseSpeedups(s string) ([]Speedup, error) {
	var out []Speedup
	for _, spec := range strings.Split(s, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.Split(spec, ":")
		if len(parts) != 3 || parts[0] == "" || parts[1] == "" {
			return nil, fmt.Errorf("speedup spec %q: want SLOW:FAST:MIN", spec)
		}
		min, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || min <= 0 {
			return nil, fmt.Errorf("speedup spec %q: bad minimum ratio %q", spec, parts[2])
		}
		out = append(out, Speedup{Slow: parts[0], Fast: parts[1], Min: min})
	}
	return out, nil
}

// CheckSpeedups verifies each spec against the measured entries. It
// returns one human-readable line per spec and the failures (absent
// benchmarks fail too: a speedup gate that silently skips proves
// nothing).
func CheckSpeedups(measured []Entry, specs []Speedup) (lines, failures []string) {
	got := make(map[string]Entry, len(measured))
	for _, e := range measured {
		got[e.Name] = e
	}
	for _, sp := range specs {
		slow, sok := got[sp.Slow]
		fast, fok := got[sp.Fast]
		if !sok || !fok {
			for name, ok := range map[string]bool{sp.Slow: sok, sp.Fast: fok} {
				if !ok {
					failures = append(failures, fmt.Sprintf("speedup %s/%s: %s not measured", sp.Slow, sp.Fast, name))
				}
			}
			continue
		}
		sns, fns := slow.Values["ns_per_op"], fast.Values["ns_per_op"]
		if fns <= 0 {
			failures = append(failures, fmt.Sprintf("speedup %s/%s: %s has no ns/op", sp.Slow, sp.Fast, sp.Fast))
			continue
		}
		ratio := sns / fns
		verdict := "ok"
		if ratio < sp.Min {
			verdict = "FAIL"
			failures = append(failures, fmt.Sprintf("speedup %s vs %s: %.2fx < required %.2fx (%.0f ns/op vs %.0f ns/op)",
				sp.Slow, sp.Fast, ratio, sp.Min, sns, fns))
		}
		lines = append(lines, fmt.Sprintf("speedup %s (%.0f ns/op) vs %s (%.0f ns/op): %.2fx (need ≥ %.2fx)  %s",
			sp.Slow, sns, sp.Fast, fns, ratio, sp.Min, verdict))
	}
	return lines, failures
}

// Table renders the benchstat-style delta table.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s %14s %14s %8s %12s %12s %8s  %s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta", "verdict")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-36s %14s %14s %8s %12s %12s %8s  %s\n",
			row.Name,
			fnum(row.OldNs), fnum(row.NewNs), delta(row.OldNs, row.NewNs),
			allocNum(row.OldAllocs, row.HasAllocs), allocNum(row.NewAllocs, row.HasAllocs),
			deltaIf(row.HasAllocs, row.OldAllocs, row.NewAllocs),
			row.Verdict)
	}
	return b.String()
}

func fnum(v float64) string {
	if v == 0 {
		return "-"
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}

func allocNum(v float64, has bool) string {
	if !has {
		return "-"
	}
	return strconv.FormatInt(int64(v), 10)
}

func delta(old, new float64) string {
	if old == 0 || new == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

func deltaIf(has bool, old, new float64) string {
	if !has {
		return "-"
	}
	return delta(old, new)
}
