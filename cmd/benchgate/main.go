// Command benchgate is the CI benchmark regression gate: it parses
// `go test -bench` output and compares it against a recorded baseline
// (BENCH_pr*.json), failing when a benchmark regresses beyond
// tolerance.
//
//	go test -bench=. -benchtime=1x -benchmem -run '^$' ./... | benchgate -baseline BENCH_pr4.json
//	go test -bench=. -benchmem -run '^$' ./... | benchgate -baseline BENCH_pr4.json -update -note "..."
//
// Wall-clock tolerance is generous by default (-max-time-ratio): the
// baseline is recorded on one machine and CI runs on another, so ns/op
// only gates catastrophic slowdowns. Allocation counts are
// hardware-independent, so allocs/op gates tightly
// (-max-alloc-ratio); benchmarks matching -alloc-lenient (parallel
// paths whose allocation count varies with worker count) fall back to
// the time ratio. -update rewrites the baseline from the measured run
// instead of comparing.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"

	"hpcfail/internal/version"
)

func main() {
	var (
		baseline     = flag.String("baseline", "", "baseline JSON file to compare against (required)")
		input        = flag.String("in", "-", "bench output to read (- = stdin)")
		timeRatio    = flag.Float64("max-time-ratio", 4.0, "fail when ns/op exceeds baseline by this factor")
		allocRatio   = flag.Float64("max-alloc-ratio", 1.15, "fail when allocs/op exceeds baseline by this factor")
		allocLenient = flag.String("alloc-lenient", "Parallel|Sharded|Stream|Resume", "regexp of benchmarks whose allocs gate at -max-time-ratio (worker-count dependent)")
		requireAll   = flag.Bool("require-all", false, "fail when a baseline benchmark is missing from the input")
		speedup      = flag.String("speedup", "", "comma-separated SLOW:FAST:MIN specs; fail unless measured ns/op(SLOW) ≥ MIN × ns/op(FAST) — a same-machine scaling gate, immune to hardware differences")
		update       = flag.Bool("update", false, "rewrite the baseline from the measured run instead of comparing")
		note         = flag.String("note", "", "note to store in the baseline when -update is set")
		showVer      = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *showVer {
		version.Print(os.Stdout, "benchgate")
		return
	}
	if *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline is required")
		os.Exit(2)
	}
	lenientRE, err := regexp.Compile(*allocLenient)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -alloc-lenient: %v\n", err)
		os.Exit(2)
	}
	speedups, err := ParseSpeedups(*speedup)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -speedup: %v\n", err)
		os.Exit(2)
	}

	var r io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		defer f.Close()
		r = f
	}
	measured, err := ParseBenchOutput(bufio.NewReader(r))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(measured) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark lines in input")
		os.Exit(2)
	}

	if *update {
		bl := Baseline{Note: *note, Goos: runtime.GOOS, Goarch: runtime.GOARCH, Benchmarks: measured}
		if old, err := ReadBaseline(*baseline); err == nil {
			bl.CPU = old.CPU
			if bl.Note == "" {
				bl.Note = old.Note
			}
		}
		if err := WriteBaseline(*baseline, bl); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(measured), *baseline)
		return
	}

	bl, err := ReadBaseline(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	rep := Compare(bl, measured, Gate{
		MaxTimeRatio:  *timeRatio,
		MaxAllocRatio: *allocRatio,
		AllocLenient:  lenientRE,
		RequireAll:    *requireAll,
	})
	fmt.Print(rep.Table())
	spLines, spFailures := CheckSpeedups(measured, speedups)
	for _, l := range spLines {
		fmt.Println(l)
	}
	rep.Failures = append(rep.Failures, spFailures...)
	if len(rep.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchgate: %d regression(s):\n", len(rep.Failures))
		for _, f := range rep.Failures {
			fmt.Fprintln(os.Stderr, "  -", f)
		}
		os.Exit(1)
	}
	fmt.Printf("\nbenchgate: %d benchmarks within tolerance (time ≤ %.2fx, allocs ≤ %.2fx)\n",
		len(rep.Rows), *timeRatio, *allocRatio)
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
