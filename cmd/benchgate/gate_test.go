package main

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	e, ok := ParseBenchLine("BenchmarkFig5-8 \t       5\t 269236977 ns/op\t154790284 B/op\t  309173 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if e.Name != "BenchmarkFig5" {
		t.Errorf("name %q (GOMAXPROCS suffix should strip)", e.Name)
	}
	if e.Iterations != 5 {
		t.Errorf("iterations %d", e.Iterations)
	}
	want := map[string]float64{"ns_per_op": 269236977, "B_per_op": 154790284, "allocs_per_op": 309173}
	for k, v := range want {
		if e.Values[k] != v {
			t.Errorf("%s = %v, want %v", k, e.Values[k], v)
		}
	}
}

func TestParseBenchLineCustomMetric(t *testing.T) {
	e, ok := ParseBenchLine("BenchmarkParseLogs \t 1\t13060073 ns/op\t     12116 lines_per_op\t 8520944 B/op\t 40669 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if e.Values["lines_per_op"] != 12116 {
		t.Errorf("lines_per_op = %v", e.Values["lines_per_op"])
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"pkg: hpcfail",
		"ok  \thpcfail\t3.300s",
		"PASS",
		"cpu: Intel(R) Xeon(R) Processor @ 2.10GHz",
		"goos: linux",
		"BenchmarkBroken  abc  1 ns/op",
		"",
	} {
		if _, ok := ParseBenchLine(line); ok {
			t.Errorf("noise line parsed as benchmark: %q", line)
		}
	}
}

func TestParseBenchOutputDuplicate(t *testing.T) {
	in := "BenchmarkX 1 10 ns/op\nBenchmarkX 1 12 ns/op\n"
	if _, err := ParseBenchOutput(strings.NewReader(in)); err == nil {
		t.Error("duplicate benchmark name should error")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	bl := Baseline{
		Note: "test run", Goos: "linux", Goarch: "amd64", CPU: "test-cpu",
		Benchmarks: []Entry{
			{Name: "BenchmarkA", Iterations: 5, Values: map[string]float64{"ns_per_op": 123456, "B_per_op": 1024, "allocs_per_op": 17}},
			{Name: "BenchmarkB", Iterations: 1, Values: map[string]float64{"ns_per_op": 967.5, "lines_per_op": 12116}},
		},
	}
	if err := WriteBaseline(path, bl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != bl.Note || got.CPU != bl.CPU || len(got.Benchmarks) != 2 {
		t.Fatalf("round trip lost header/entries: %+v", got)
	}
	for i, e := range bl.Benchmarks {
		g := got.Benchmarks[i]
		if g.Name != e.Name || g.Iterations != e.Iterations {
			t.Errorf("entry %d: %+v, want %+v", i, g, e)
		}
		for k, v := range e.Values {
			if g.Values[k] != v {
				t.Errorf("entry %d %s: %v, want %v", i, k, g.Values[k], v)
			}
		}
	}
}

func gateForTest() Gate {
	return Gate{MaxTimeRatio: 4.0, MaxAllocRatio: 1.15, AllocLenient: regexp.MustCompile("Parallel")}
}

func TestCompareWithinTolerance(t *testing.T) {
	bl := Baseline{Benchmarks: []Entry{
		{Name: "BenchmarkA", Values: map[string]float64{"ns_per_op": 100, "allocs_per_op": 100}},
	}}
	rep := Compare(bl, []Entry{
		{Name: "BenchmarkA", Values: map[string]float64{"ns_per_op": 350, "allocs_per_op": 110}},
	}, gateForTest())
	if len(rep.Failures) != 0 {
		t.Errorf("within-tolerance run failed: %v", rep.Failures)
	}
}

func TestCompareTimeRegression(t *testing.T) {
	bl := Baseline{Benchmarks: []Entry{{Name: "BenchmarkA", Values: map[string]float64{"ns_per_op": 100}}}}
	rep := Compare(bl, []Entry{{Name: "BenchmarkA", Values: map[string]float64{"ns_per_op": 500}}}, gateForTest())
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "ns/op") {
		t.Errorf("5x slowdown not caught: %v", rep.Failures)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	bl := Baseline{Benchmarks: []Entry{
		{Name: "BenchmarkA", Values: map[string]float64{"ns_per_op": 100, "allocs_per_op": 100}},
	}}
	rep := Compare(bl, []Entry{
		{Name: "BenchmarkA", Values: map[string]float64{"ns_per_op": 100, "allocs_per_op": 130}},
	}, gateForTest())
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "allocs/op") {
		t.Errorf("30%% alloc growth not caught: %v", rep.Failures)
	}
}

func TestCompareAllocLenient(t *testing.T) {
	bl := Baseline{Benchmarks: []Entry{
		{Name: "BenchmarkAParallel", Values: map[string]float64{"ns_per_op": 100, "allocs_per_op": 100}},
	}}
	rep := Compare(bl, []Entry{
		{Name: "BenchmarkAParallel", Values: map[string]float64{"ns_per_op": 100, "allocs_per_op": 130}},
	}, gateForTest())
	if len(rep.Failures) != 0 {
		t.Errorf("lenient benchmark should pass at 1.3x allocs: %v", rep.Failures)
	}
}

func TestCompareMissingAndNew(t *testing.T) {
	bl := Baseline{Benchmarks: []Entry{{Name: "BenchmarkGone", Values: map[string]float64{"ns_per_op": 100}}}}
	measured := []Entry{{Name: "BenchmarkNew", Values: map[string]float64{"ns_per_op": 50}}}
	rep := Compare(bl, measured, gateForTest())
	if len(rep.Failures) != 0 {
		t.Errorf("missing benchmark should not fail without -require-all: %v", rep.Failures)
	}
	g := gateForTest()
	g.RequireAll = true
	rep = Compare(bl, measured, g)
	if len(rep.Failures) != 1 {
		t.Errorf("RequireAll should flag the missing benchmark: %v", rep.Failures)
	}
	verdicts := map[string]string{}
	for _, row := range rep.Rows {
		verdicts[row.Name] = row.Verdict
	}
	if verdicts["BenchmarkGone"] != "missing" || verdicts["BenchmarkNew"] != "new" {
		t.Errorf("verdicts = %v", verdicts)
	}
}

func TestCompareAgainstRecordedFormat(t *testing.T) {
	// The gate must read the repo's actual baseline files.
	bl, err := ReadBaseline("../../BENCH_pr3.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(bl.Benchmarks) == 0 {
		t.Fatal("BENCH_pr3.json parsed empty")
	}
	found := false
	for _, e := range bl.Benchmarks {
		if e.Name == "BenchmarkFig5" {
			found = true
			if e.Values["ns_per_op"] == 0 {
				t.Error("BenchmarkFig5 ns_per_op missing")
			}
		}
	}
	if !found {
		t.Error("BenchmarkFig5 not in BENCH_pr3.json")
	}
}

func TestParseSpeedups(t *testing.T) {
	sps, err := ParseSpeedups(" BenchmarkA/p1:BenchmarkA/p16:5 , BenchmarkB:BenchmarkC:1.5 ,")
	if err != nil {
		t.Fatal(err)
	}
	want := []Speedup{
		{Slow: "BenchmarkA/p1", Fast: "BenchmarkA/p16", Min: 5},
		{Slow: "BenchmarkB", Fast: "BenchmarkC", Min: 1.5},
	}
	if len(sps) != len(want) {
		t.Fatalf("parsed %d specs, want %d", len(sps), len(want))
	}
	for i := range want {
		if sps[i] != want[i] {
			t.Errorf("spec %d = %+v, want %+v", i, sps[i], want[i])
		}
	}
	if sps, err := ParseSpeedups(""); err != nil || len(sps) != 0 {
		t.Errorf("empty spec = %v, %v; want none", sps, err)
	}
	for _, bad := range []string{"a:b", "a:b:c:d", "a:b:zero", "a:b:-1", ":b:2", "a::2"} {
		if _, err := ParseSpeedups(bad); err == nil {
			t.Errorf("ParseSpeedups(%q) accepted a malformed spec", bad)
		}
	}
}

func TestCheckSpeedups(t *testing.T) {
	measured := []Entry{
		{Name: "BenchmarkIngestParallel/p1", Values: map[string]float64{"ns_per_op": 120000}},
		{Name: "BenchmarkIngestParallel/p16", Values: map[string]float64{"ns_per_op": 15000}},
	}
	spec := func(min float64) []Speedup {
		return []Speedup{{Slow: "BenchmarkIngestParallel/p1", Fast: "BenchmarkIngestParallel/p16", Min: min}}
	}

	// 8x measured ≥ 5x required: passes, with one report line.
	lines, failures := CheckSpeedups(measured, spec(5))
	if len(failures) != 0 {
		t.Errorf("8x vs required 5x failed: %v", failures)
	}
	if len(lines) != 1 {
		t.Errorf("want one report line, got %v", lines)
	}

	// 8x measured < 10x required: fails.
	if _, failures := CheckSpeedups(measured, spec(10)); len(failures) != 1 {
		t.Errorf("8x vs required 10x should fail once, got %v", failures)
	}

	// A missing side must fail, not silently pass — the gate proves a
	// scaling property only if both benchmarks actually ran.
	if _, failures := CheckSpeedups(measured[:1], spec(5)); len(failures) != 1 {
		t.Errorf("missing fast benchmark should fail, got %v", failures)
	}
	if _, failures := CheckSpeedups(nil, spec(5)); len(failures) != 2 {
		t.Errorf("both sides missing should fail twice, got %v", failures)
	}
}
