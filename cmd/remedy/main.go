// Command remedy replays a seeded fault scenario through the
// closed-loop remediation engine and scores it against the simulator's
// ground truth:
//
//	remedy -system S1 -days 14 -seed 42
//	remedy -system S3 -seed 7 -tickets 20   # also print the ledger tail
//
// The report compares the remediated run against the do-nothing
// baseline: failures averted (node taken out of service before its
// ground-truth failure), lead time consumed, jobs saved vs requeued,
// and the false-action rate (disruptive SOPs with no real failure
// nearby). The ticket summary partitions every engine decision —
// executions, guard refusals, exhausted retries — because refusals are
// auditable decisions too.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hpcfail/internal/faultsim"
	"hpcfail/internal/remedy"
	"hpcfail/internal/report"
	"hpcfail/internal/version"
)

type options struct {
	system  string
	days    int
	seed    uint64
	scale   float64
	tickets int
}

func main() {
	var o options
	flag.StringVar(&o.system, "system", "S1", "system profile: S1, S2, S3 or S4")
	flag.IntVar(&o.days, "days", 14, "simulated days")
	flag.Uint64Var(&o.seed, "seed", 42, "scenario seed")
	flag.Float64Var(&o.scale, "scale", 0.25, "cluster scale factor (1.0 = paper node counts)")
	flag.IntVar(&o.tickets, "tickets", 0, "print the last N ledger tickets (0 = none)")
	showVer := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *showVer {
		version.Print(os.Stdout, "remedy")
		return
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "remedy:", err)
		os.Exit(1)
	}
}

// profile scales the named system the same way the experiments harness
// does: floor of 192 nodes, flood blades off, workload density held
// proportional.
func profile(system string, scale float64) (faultsim.Profile, error) {
	p, err := faultsim.DefaultProfile(system)
	if err != nil {
		return p, err
	}
	if scale <= 0 {
		scale = 0.25
	}
	n := int(float64(p.Spec.Nodes) * scale)
	if n < 192 {
		n = 192
	}
	p.Spec.Nodes = n
	if p.Spec.CabinetCols > 2 {
		p.Spec.CabinetCols = 2
	}
	p.FloodBladeIdx = nil
	p.FloodStopIdx = -1
	p.Workload.MeanInterarrival = time.Duration(float64(p.Workload.MeanInterarrival) / scale * 0.25)
	if p.Workload.MeanInterarrival < time.Minute {
		p.Workload.MeanInterarrival = time.Minute
	}
	return p, nil
}

func run(o options, stdout io.Writer) error {
	p, err := profile(o.system, o.scale)
	if err != nil {
		return err
	}
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scn, err := faultsim.Generate(p, start, start.Add(time.Duration(o.days)*24*time.Hour), o.seed)
	if err != nil {
		return err
	}
	rcfg := remedy.ReplayConfig{Engine: remedy.Config{BackoffBase: -1}}
	res, err := remedy.Replay(scn, rcfg)
	if err != nil {
		return err
	}
	if err := remedy.VerifyGuards(res.Tickets, rcfg.Engine); err != nil {
		return fmt.Errorf("safety guard violated (ledger audit): %w", err)
	}
	s := res.Score

	fmt.Fprintf(stdout, "scenario: %s, %d nodes, %d days, seed %d — %d ground-truth failures\n\n",
		o.system, p.Spec.Nodes, o.days, o.seed, len(scn.Failures))

	tbl := report.NewTable("With vs without the closed loop",
		"metric", "without", "with remediation")
	tbl.AddRow("node failures reaching users", res.Baseline.Failures, s.Failures-s.Averted)
	tbl.AddRow("failures averted", 0, fmt.Sprintf("%d (%s)", s.Averted, report.Pct(s.AvertedRate)))
	tbl.AddRow("jobs hit by failures", res.Baseline.JobsHit, res.Baseline.JobsHit-s.JobsSaved)
	tbl.AddRow("jobs requeued by drains", 0, s.JobsRequeued)
	tbl.AddRow("mean lead time consumed", "-", s.MeanLeadConsumed.Round(time.Second).String())
	tbl.AddRow("false actions (rate)", 0, fmt.Sprintf("%d (%s)", s.FalseActions, report.Pct(s.FalseActionRate)))
	fmt.Fprint(stdout, tbl.String())

	st := res.Stats
	fmt.Fprintf(stdout, "\nledger: %d tickets — %d executed, %d refused, %d failed; %d duplicates suppressed, %d drains downgraded\n",
		len(res.Tickets), st.Executed, st.Refused, st.Failed, st.Deduped, st.Downgraded)
	fmt.Fprintf(stdout, "guards: peak concurrent drains %d, peak cabinet blast radius %d; ledger audit clean\n",
		st.MaxActiveDrains, st.MaxCabinetWindow)

	if o.tickets > 0 {
		n := len(res.Tickets)
		first := n - o.tickets
		if first < 0 {
			first = 0
		}
		ttbl := report.NewTable(fmt.Sprintf("Last %d tickets", n-first),
			"id", "time", "node", "sop", "decision", "reason")
		for _, tk := range res.Tickets[first:] {
			reason := tk.Reason
			if reason == "" {
				reason = "-"
			}
			ttbl.AddRow(tk.ID, tk.Time.Format("01-02 15:04:05"), tk.Node, tk.Kind, tk.Decision, reason)
		}
		fmt.Fprint(stdout, "\n")
		fmt.Fprint(stdout, ttbl.String())
	}
	return nil
}
