package main

// Golden-output tests over the committed fixture corpora in
// ../../testdata. Regenerate expectations after an intentional output
// change with:
//
//	go test ./cmd/leadtime -update

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

const (
	fixtureClean    = "../../testdata/corpus-clean"
	fixtureDegraded = "../../testdata/corpus-degraded"
)

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output diverges from %s (got %d bytes, want %d)\n--- got ---\n%s",
			path, len(got), len(want), got)
	}
}

func TestGoldenLeadtime(t *testing.T) {
	cases := []struct {
		name string
		o    options
	}{
		{name: "leadtime-clean", o: options{logs: fixtureClean, sched: "slurm"}},
		{name: "leadtime-degraded", o: options{logs: fixtureDegraded, sched: "slurm"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(c.o, &buf); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, c.name, buf.Bytes())
		})
	}
}
