package main

import (
	"io"
	"path/filepath"
	"testing"
	"time"

	"hpcfail"
)

func TestRunLeadtime(t *testing.T) {
	p, err := hpcfail.SystemProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec.Nodes = 384
	p.Spec.CabinetCols = 2
	p.FloodBladeIdx = nil
	p.FloodStopIdx = -1
	p.Workload.MeanInterarrival = 30 * time.Minute
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scn, err := hpcfail.Simulate(p, start, start.AddDate(0, 0, 3), 9)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "logs")
	if err := hpcfail.WriteLogs(dir, scn); err != nil {
		t.Fatal(err)
	}
	if err := run(options{logs: dir, sched: "slurm"}, io.Discard); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Torque path selects the other dialect (and finds no records in a
	// Slurm-format dir's scheduler log — parse errors tolerated).
	if err := run(options{logs: dir, sched: "torque"}, io.Discard); err != nil {
		t.Fatalf("run torque: %v", err)
	}
}
