// Command leadtime performs the focused Fig 13 analysis over a log
// directory: for every detected failure it reports the internal
// precursor lead, the external early-indicator lead, and the
// enhancement factor, then the aggregate.
//
//	leadtime -logs ./logs -scheduler slurm
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hpcfail"
	"hpcfail/internal/core"
	"hpcfail/internal/report"
	"hpcfail/internal/topology"
	"hpcfail/internal/version"
)

// options carries the parsed command line.
type options struct {
	logs  string
	sched string
}

func main() {
	var o options
	flag.StringVar(&o.logs, "logs", "logs", "log directory")
	flag.StringVar(&o.sched, "scheduler", "slurm", "scheduler dialect: slurm or torque")
	showVer := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *showVer {
		version.Print(os.Stdout, "leadtime")
		return
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "leadtime:", err)
		os.Exit(1)
	}
}

func run(o options, stdout io.Writer) error {
	st := topology.SchedulerSlurm
	if o.sched == "torque" {
		st = topology.SchedulerTorque
	}
	store, _, err := hpcfail.LoadLogs(o.logs, st)
	if err != nil {
		return err
	}
	res := hpcfail.Diagnose(store)
	tbl := report.NewTable("Per-failure lead times",
		"time", "node", "cause", "internal", "external", "factor")
	for _, d := range res.Diagnoses {
		lt := core.ComputeLeadTime(d)
		ext, factor := "-", "-"
		if lt.External > 0 {
			ext = lt.External.Round(time.Second).String()
		}
		if lt.Enhanced {
			factor = fmt.Sprintf("%.1fx", lt.Factor())
		}
		intl := "-"
		if lt.Internal > 0 {
			intl = lt.Internal.Round(time.Second).String()
		}
		tbl.AddRow(d.Detection.Time.Format("01-02 15:04"), d.Detection.Node.String(),
			d.Cause.String(), intl, ext, factor)
	}
	fmt.Fprint(stdout, tbl.String())
	sum := hpcfail.SummarizeLeadTimes(res.Diagnoses)
	fmt.Fprintf(stdout, "\n%d/%d failures enhanceable (%s); mean internal %.1f min -> mean external %.1f min (%.1fx)\n",
		sum.Enhanceable, sum.Total, report.Pct(sum.EnhanceableFraction()),
		sum.MeanInternalMin, sum.MeanExternalMin, sum.MeanFactor)
	fmt.Fprintln(stdout, "paper: ~5x enhancement for the 10-28% of failures with external indicators;")
	fmt.Fprintln(stdout, "       application-triggered failures have none (Observation 5).")
	return nil
}
