// Command leadtime performs the focused Fig 13 analysis over a log
// directory: for every detected failure it reports the internal
// precursor lead, the external early-indicator lead, and the
// enhancement factor, then the aggregate.
//
//	leadtime -logs ./logs -scheduler slurm
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hpcfail"
	"hpcfail/internal/core"
	"hpcfail/internal/report"
	"hpcfail/internal/topology"
)

func main() {
	var (
		logs  = flag.String("logs", "logs", "log directory")
		sched = flag.String("scheduler", "slurm", "scheduler dialect: slurm or torque")
	)
	flag.Parse()
	if err := run(*logs, *sched); err != nil {
		fmt.Fprintln(os.Stderr, "leadtime:", err)
		os.Exit(1)
	}
}

func run(dir, sched string) error {
	st := topology.SchedulerSlurm
	if sched == "torque" {
		st = topology.SchedulerTorque
	}
	store, _, err := hpcfail.LoadLogs(dir, st)
	if err != nil {
		return err
	}
	res := hpcfail.Diagnose(store)
	tbl := report.NewTable("Per-failure lead times",
		"time", "node", "cause", "internal", "external", "factor")
	for _, d := range res.Diagnoses {
		lt := core.ComputeLeadTime(d)
		ext, factor := "-", "-"
		if lt.External > 0 {
			ext = lt.External.Round(time.Second).String()
		}
		if lt.Enhanced {
			factor = fmt.Sprintf("%.1fx", lt.Factor())
		}
		intl := "-"
		if lt.Internal > 0 {
			intl = lt.Internal.Round(time.Second).String()
		}
		tbl.AddRow(d.Detection.Time.Format("01-02 15:04"), d.Detection.Node.String(),
			d.Cause.String(), intl, ext, factor)
	}
	fmt.Print(tbl.String())
	sum := hpcfail.SummarizeLeadTimes(res.Diagnoses)
	fmt.Printf("\n%d/%d failures enhanceable (%s); mean internal %.1f min -> mean external %.1f min (%.1fx)\n",
		sum.Enhanceable, sum.Total, report.Pct(sum.EnhanceableFraction()),
		sum.MeanInternalMin, sum.MeanExternalMin, sum.MeanFactor)
	fmt.Println("paper: ~5x enhancement for the 10-28% of failures with external indicators;")
	fmt.Println("       application-triggered failures have none (Observation 5).")
	return nil
}
