// Command experiments regenerates the paper's tables and figures:
//
//	experiments -all                  # every artifact
//	experiments -id fig13             # one artifact
//	experiments -list                 # list artifacts and paper targets
//	experiments -id fig3 -scale 0.5   # larger (slower) clusters
//
// Each experiment simulates the relevant system(s), runs the diagnosis
// pipeline, and prints the same rows/series the paper reports together
// with the paper's target numbers.
package main

import (
	"flag"
	"fmt"
	"os"

	"hpcfail/internal/experiments"
)

func main() {
	var (
		id     = flag.String("id", "", "experiment to run (e.g. fig3, table5)")
		all    = flag.Bool("all", false, "run every experiment")
		list   = flag.Bool("list", false, "list available experiments")
		seed   = flag.Uint64("seed", 42, "random seed")
		scale  = flag.Float64("scale", 0.25, "cluster scale factor (1.0 = paper node counts)")
		quick  = flag.Bool("quick", false, "shorten simulated durations")
		format = flag.String("format", "text", "output format: text, markdown or csv")
	)
	flag.Parse()

	if *format != "text" && *format != "markdown" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "experiments: unknown format %q\n", *format)
		os.Exit(2)
	}
	cfg := experiments.Config{Seed: *seed, Scale: *scale, Quick: *quick}
	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n%-12s   paper: %s\n", e.ID, e.Title, "", e.Paper)
		}
	case *all:
		for _, e := range experiments.All() {
			run(e, cfg, *format)
		}
	case *id != "":
		e, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", *id)
			os.Exit(1)
		}
		run(e, cfg, *format)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func run(e experiments.Experiment, cfg experiments.Config, format string) {
	res, err := e.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
		os.Exit(1)
	}
	switch format {
	case "markdown":
		fmt.Print(res.Markdown())
	case "csv":
		fmt.Print(res.CSV())
	default:
		fmt.Println(res.String())
	}
}
