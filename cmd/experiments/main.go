// Command experiments regenerates the paper's tables and figures:
//
//	experiments -all                  # every artifact
//	experiments -all -jobs 4          # every artifact, 4 parallel workers
//	experiments -id fig13             # one artifact
//	experiments -list                 # list artifacts and paper targets
//	experiments -id fig3 -scale 0.5   # larger (slower) clusters
//
// Each experiment simulates the relevant system(s), runs the diagnosis
// pipeline, and prints the same rows/series the paper reports together
// with the paper's target numbers.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"hpcfail/internal/experiments"
	"hpcfail/internal/version"
)

func main() {
	var (
		id      = flag.String("id", "", "experiment to run (e.g. fig3, table5)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list available experiments")
		seed    = flag.Uint64("seed", 42, "random seed")
		scale   = flag.Float64("scale", 0.25, "cluster scale factor (1.0 = paper node counts)")
		quick   = flag.Bool("quick", false, "shorten simulated durations")
		format  = flag.String("format", "text", "output format: text, markdown or csv")
		jobs    = flag.Int("jobs", 0, "worker count for -all (0 = GOMAXPROCS, 1 = sequential)")
		showVer = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *showVer {
		version.Print(os.Stdout, "experiments")
		return
	}

	if *format != "text" && *format != "markdown" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "experiments: unknown format %q\n", *format)
		os.Exit(2)
	}
	cfg := experiments.Config{Seed: *seed, Scale: *scale, Quick: *quick}
	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n%-12s   paper: %s\n", e.ID, e.Title, "", e.Paper)
		}
	case *all:
		// Experiments are independent simulations; run them on a worker
		// pool and print in registry order as results become final.
		// Ctrl-C stops dispatching promptly: in-flight experiments
		// finish, the rest report the cancellation.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		failed := false
		for _, o := range experiments.RunAllContext(ctx, experiments.All(), cfg, *jobs) {
			if o.Err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", o.Experiment.ID, o.Err)
				failed = true
				continue
			}
			emit(o.Result, *format)
		}
		if failed {
			os.Exit(1)
		}
	case *id != "":
		e, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", *id)
			os.Exit(1)
		}
		run(e, cfg, *format)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func run(e experiments.Experiment, cfg experiments.Config, format string) {
	res, err := e.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
		os.Exit(1)
	}
	emit(res, format)
}

func emit(res *experiments.Result, format string) {
	switch format {
	case "markdown":
		fmt.Print(res.Markdown())
	case "csv":
		fmt.Print(res.CSV())
	default:
		fmt.Println(res.String())
	}
}
