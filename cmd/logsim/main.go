// Command logsim generates synthetic raw logs for one of the study's
// systems:
//
//	logsim -system S1 -days 7 -seed 42 -out ./logs
//
// The output directory holds one file per log stream (console.log,
// messages.log, controller-bc.log, controller-cc.log, erd.log,
// scheduler.log) in the formats the diagnosis pipeline consumes, plus a
// ground-truth.csv with the simulator's planted failures for
// validation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hpcfail"
	"hpcfail/internal/version"
)

func main() {
	var (
		system  = flag.String("system", "S1", "system profile: S1..S5")
		days    = flag.Int("days", 7, "simulated days")
		seed    = flag.Uint64("seed", 42, "random seed")
		out     = flag.String("out", "logs", "output directory")
		nodes   = flag.Int("nodes", 0, "override node count (0 = profile default)")
		start   = flag.String("start", "2015-03-02", "simulation start date (YYYY-MM-DD)")
		profile = flag.String("profile", "", "JSON profile file overriding -system (see -dump-profile)")
		dump    = flag.Bool("dump-profile", false, "print the selected profile as JSON and exit")
		chaos   = flag.String("chaos", "", `corrupt rendered logs, e.g. "mode=garble,intensity=0.2" or "drop=0.1,shuffle=0.3,seed=7"`)
		showVer = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *showVer {
		version.Print(os.Stdout, "logsim")
		return
	}

	if *dump {
		p, err := loadProfile(*system, *profile, *nodes)
		if err == nil {
			var buf []byte
			buf, err = json.MarshalIndent(p, "", "  ")
			if err == nil {
				fmt.Println(string(buf))
				return
			}
		}
		fmt.Fprintln(os.Stderr, "logsim:", err)
		os.Exit(1)
	}
	if err := run(*system, *profile, *days, *seed, *out, *nodes, *start, *chaos); err != nil {
		fmt.Fprintln(os.Stderr, "logsim:", err)
		os.Exit(1)
	}
}

// loadProfile resolves the simulation profile: a JSON file when given
// (durations in nanoseconds, as encoding/json renders time.Duration),
// the named built-in system otherwise.
func loadProfile(system, profilePath string, nodes int) (hpcfail.Profile, error) {
	var p hpcfail.Profile
	var err error
	if profilePath != "" {
		data, rerr := os.ReadFile(profilePath)
		if rerr != nil {
			return p, rerr
		}
		if jerr := json.Unmarshal(data, &p); jerr != nil {
			return p, fmt.Errorf("parsing %s: %w", profilePath, jerr)
		}
	} else {
		p, err = hpcfail.SystemProfile(system)
		if err != nil {
			return p, err
		}
	}
	if nodes > 0 {
		p.Spec.Nodes = nodes
	}
	return p, nil
}

func run(system, profilePath string, days int, seed uint64, out string, nodes int, startStr, chaosSpec string) error {
	p, err := loadProfile(system, profilePath, nodes)
	if err != nil {
		return err
	}
	startDay, err := time.Parse("2006-01-02", startStr)
	if err != nil {
		return fmt.Errorf("bad -start: %w", err)
	}
	end := startDay.Add(time.Duration(days) * 24 * time.Hour)

	scn, err := hpcfail.Simulate(p, startDay, end, seed)
	if err != nil {
		return err
	}
	if chaosSpec != "" {
		ccfg, err := hpcfail.ParseChaosSpec(chaosSpec)
		if err != nil {
			return fmt.Errorf("bad -chaos: %w", err)
		}
		if ccfg.Seed == 0 {
			ccfg.Seed = seed
		}
		rep, err := hpcfail.WriteLogsChaos(out, scn, ccfg)
		if err != nil {
			return err
		}
		fmt.Println(rep.String())
	} else if err := hpcfail.WriteLogs(out, scn); err != nil {
		return err
	}
	// Ground truth for validation.
	var b strings.Builder
	b.WriteString("node,time,cause,mode,job_id,external_indicator\n")
	for _, f := range scn.Failures {
		fmt.Fprintf(&b, "%s,%s,%s,%s,%d,%v\n",
			f.Node, f.Time.UTC().Format(time.RFC3339), f.Cause, f.Mode, f.JobID, f.HasExternalIndicator)
	}
	if err := os.WriteFile(filepath.Join(out, "ground-truth.csv"), []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("simulated %s (%d nodes) for %d days: %d records, %d jobs, %d failures -> %s\n",
		system, scn.Cluster.NumNodes(), days, len(scn.Records), len(scn.Jobs), len(scn.Failures), out)
	return nil
}
