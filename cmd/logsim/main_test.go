package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunLogsim(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	if err := run("S1", "", 1, 7, dir, 384, "2015-03-02", ""); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"console.log", "scheduler.log", "erd.log", "ground-truth.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s missing: %v", f, err)
		}
		if len(data) == 0 {
			t.Errorf("%s empty", f)
		}
	}
	gt, _ := os.ReadFile(filepath.Join(dir, "ground-truth.csv"))
	if !strings.HasPrefix(string(gt), "node,time,cause") {
		t.Error("ground truth header missing")
	}
}

func TestRunLogsimErrors(t *testing.T) {
	if err := run("S9", "", 1, 7, t.TempDir(), 0, "2015-03-02", ""); err == nil {
		t.Error("unknown system should error")
	}
	if err := run("S1", "", 1, 7, t.TempDir(), 0, "not-a-date", ""); err == nil {
		t.Error("bad start date should error")
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	// Dump the built-in profile, reload it through -profile, simulate.
	p, err := loadProfile("S1", "", 256)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	q, err := loadProfile("", path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Spec.Nodes != 256 || q.Spec.ID != p.Spec.ID || q.EpisodesPerDay != p.EpisodesPerDay {
		t.Errorf("profile round trip mismatch: %+v", q.Spec)
	}
	out := filepath.Join(t.TempDir(), "logs")
	if err := run("", path, 1, 3, out, 0, "2015-03-02", ""); err != nil {
		t.Fatalf("run with JSON profile: %v", err)
	}
	if err := run("", filepath.Join(t.TempDir(), "missing.json"), 1, 3, out, 0, "2015-03-02", ""); err == nil {
		t.Error("missing profile file should error")
	}
}

func TestRunLogsimChaos(t *testing.T) {
	// Chaos corpora must be deterministic per seed and still ingestible.
	dirA := filepath.Join(t.TempDir(), "a")
	dirB := filepath.Join(t.TempDir(), "b")
	for _, dir := range []string{dirA, dirB} {
		if err := run("S1", "", 1, 7, dir, 384, "2015-03-02", "mode=garble,intensity=0.2"); err != nil {
			t.Fatal(err)
		}
	}
	a, err := os.ReadFile(filepath.Join(dirA, "console.log"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dirB, "console.log"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("chaos output differs across identical runs")
	}
	clean := filepath.Join(t.TempDir(), "clean")
	if err := run("S1", "", 1, 7, clean, 384, "2015-03-02", ""); err != nil {
		t.Fatal(err)
	}
	c, _ := os.ReadFile(filepath.Join(clean, "console.log"))
	if string(a) == string(c) {
		t.Error("chaos output identical to clean render")
	}
	if err := run("S1", "", 1, 7, t.TempDir(), 0, "2015-03-02", "mode=bogus,intensity=2"); err == nil {
		t.Error("bad chaos spec should error")
	}
}
