package main

// Golden-output tests for the online replay over the committed fixture
// corpora in ../../testdata. Regenerate with:
//
//	go test ./cmd/watch -update
//
// Each case also replays through the -stream loader; since the merged
// sharded store is byte-identical to the sequential one, the replay
// transcript must match exactly.

import (
	"bytes"
	"context"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

const (
	fixtureClean    = "../../testdata/corpus-clean"
	fixtureDegraded = "../../testdata/corpus-degraded"
)

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output diverges from %s (got %d bytes, want %d)\n--- got ---\n%s",
			path, len(got), len(want), got)
	}
}

func TestGoldenWatch(t *testing.T) {
	cases := []struct {
		name     string
		o        options
		wantNote string
	}{
		{name: "watch-clean", o: options{logs: fixtureClean, sched: "slurm", alarms: true}},
		{name: "watch-degraded", o: options{logs: fixtureDegraded, sched: "slurm", alarms: true},
			wantNote: "degraded ingest:"},
		{name: "watch-chaos-replay", o: options{logs: fixtureClean, sched: "slurm", alarms: true,
			reorder: time.Hour, chaos: "mode=shuffle,intensity=0.3,seed=11"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			render := func(o options) []byte {
				var buf bytes.Buffer
				if err := run(context.Background(), o, &buf, io.Discard); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			seq := render(c.o)
			if c.wantNote != "" && !bytes.Contains(seq, []byte(c.wantNote)) {
				t.Errorf("output lacks expected note %q", c.wantNote)
			}
			checkGolden(t, c.name, seq)

			streamed := c.o
			streamed.stream = true
			streamed.workers = 3
			streamed.shards = 4
			if got := render(streamed); !bytes.Equal(got, seq) {
				t.Errorf("-stream replay diverges from sequential (%d vs %d bytes)", len(got), len(seq))
			}
		})
	}
}
