package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hpcfail"
	"hpcfail/internal/topology"
)

func writeTestLogs(t *testing.T) string {
	t.Helper()
	p, err := hpcfail.SystemProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec.Nodes = 384
	p.Spec.CabinetCols = 2
	p.FloodBladeIdx = nil
	p.FloodStopIdx = -1
	p.Workload.MeanInterarrival = 30 * time.Minute
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scn, err := hpcfail.Simulate(p, start, start.AddDate(0, 0, 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "logs")
	if err := hpcfail.WriteLogs(dir, scn); err != nil {
		t.Fatal(err)
	}
	return dir
}

func watchOpts(dir string) options {
	return options{logs: dir, sched: "slurm", alarms: true}
}

func TestRunWatch(t *testing.T) {
	ctx := context.Background()
	dir := writeTestLogs(t)
	if err := run(ctx, watchOpts(dir), io.Discard, io.Discard); err != nil {
		t.Fatalf("run with alarms: %v", err)
	}
	o := watchOpts(dir)
	o.alarms = false
	if err := run(ctx, o, io.Discard, io.Discard); err != nil {
		t.Fatalf("run without alarms: %v", err)
	}
	o = watchOpts(dir)
	o.stream = true
	o.workers = 2
	if err := run(ctx, o, io.Discard, io.Discard); err != nil {
		t.Fatalf("run -stream: %v", err)
	}
	if err := run(ctx, watchOpts(t.TempDir()), io.Discard, io.Discard); err == nil {
		t.Error("empty directory should error")
	}
	o = watchOpts(dir)
	o.resume = true
	if err := run(ctx, o, io.Discard, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-resume requires") {
		t.Errorf("-resume without state should error, got %v", err)
	}
}

func TestRunWatchChaosReplay(t *testing.T) {
	ctx := context.Background()
	dir := writeTestLogs(t)
	// Shuffled delivery absorbed by the reorder buffer.
	o := watchOpts(dir)
	o.reorder = time.Hour
	o.chaos = "mode=shuffle,intensity=0.5,seed=3"
	if err := run(ctx, o, io.Discard, io.Discard); err != nil {
		t.Fatalf("chaos replay: %v", err)
	}
	// Every mode at 20% intensity must survive without error.
	for _, mode := range []string{"drop", "truncate", "garble", "duplicate", "shuffle", "clockskew", "interleave"} {
		o := watchOpts(dir)
		o.reorder = time.Minute
		o.chaos = "mode=" + mode + ",intensity=0.2,seed=9"
		if err := run(ctx, o, io.Discard, io.Discard); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
	o = watchOpts(dir)
	o.chaos = "mode=nope,intensity=0.2"
	if err := run(ctx, o, io.Discard, io.Discard); err == nil {
		t.Error("bad chaos spec should error")
	}
}

func TestRunWatchSurvivesDamagedDir(t *testing.T) {
	dir := writeTestLogs(t)
	// Empty one stream, delete another: the replay must still run.
	if err := os.WriteFile(filepath.Join(dir, "erd.log"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "controller-bc.log")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), watchOpts(dir), io.Discard, io.Discard); err != nil {
		t.Fatalf("damaged dir: %v", err)
	}
}

// cancelAfter cancels a context once n writes have passed through it —
// the deterministic stand-in for a SIGTERM landing mid-replay.
type cancelAfter struct {
	w      io.Writer
	n      int
	cancel context.CancelFunc
}

func (c *cancelAfter) Write(p []byte) (int, error) {
	if c.n--; c.n == 0 {
		c.cancel()
	}
	return c.w.Write(p)
}

// eventLines strips the trailing summary so interrupted and resumed
// transcripts can be compared event for event.
func eventLines(out string) string {
	if i := strings.Index(out, "\nreplayed "); i >= 0 {
		return out[:i]
	}
	return out
}

// TestRunWatchCheckpointResume: interrupt the replay mid-flight, then
// resume from the snapshot — the concatenated event transcript must be
// identical to an uninterrupted run, and the final summary must count
// the whole corpus.
func TestRunWatchCheckpointResume(t *testing.T) {
	dir := writeTestLogs(t)
	for _, reorder := range []time.Duration{0, 10 * time.Minute} {
		var whole bytes.Buffer
		o := watchOpts(dir)
		o.reorder = reorder
		if err := run(context.Background(), o, &whole, io.Discard); err != nil {
			t.Fatalf("reference run: %v", err)
		}

		o.checkpoint = filepath.Join(t.TempDir(), "watch.ckpt")
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var first bytes.Buffer
		err := run(ctx, o, &cancelAfter{w: &first, n: 12, cancel: cancel}, io.Discard)
		if !errors.Is(err, hpcfail.ErrInterrupted) {
			t.Fatalf("interrupted run: want ErrInterrupted, got %v", err)
		}
		if _, err := os.Stat(o.checkpoint); err != nil {
			t.Fatalf("no shutdown checkpoint written: %v", err)
		}

		o.resume = true
		var second, notes bytes.Buffer
		if err := run(context.Background(), o, &second, &notes); err != nil {
			t.Fatalf("resume run: %v\nstderr: %s", err, notes.String())
		}
		if !strings.Contains(notes.String(), "restored watcher checkpoint") {
			t.Errorf("resume did not restore the checkpoint:\n%s", notes.String())
		}

		got := eventLines(first.String()) + eventLines(second.String())
		want := eventLines(whole.String())
		if got != want {
			t.Errorf("reorder %v: resumed transcript diverges from uninterrupted run\n--- got ---\n%s\n--- want ---\n%s",
				reorder, got, want)
		}
		// Cumulative accounting: the resumed summary covers the corpus.
		wantSummary := whole.String()[len(eventLines(whole.String())):]
		gotSummary := second.String()[len(eventLines(second.String())):]
		wantReplayed := strings.SplitN(wantSummary, ":", 2)[0]
		if !strings.HasPrefix(gotSummary, wantReplayed) {
			t.Errorf("reorder %v: resumed summary %q does not count the whole corpus (%q)",
				reorder, strings.TrimSpace(gotSummary), strings.TrimSpace(wantReplayed))
		}
	}
}

// TestRunWatchWALResume: kill a journaled ingestion mid-load (library
// chunk hook as the SIGTERM stand-in), then resume through the command;
// the replay output must match an uninterrupted run.
func TestRunWatchWALResume(t *testing.T) {
	dir := writeTestLogs(t)
	var want bytes.Buffer
	o := watchOpts(dir)
	o.stream = true
	o.workers = 2
	if err := run(context.Background(), o, &want, io.Discard); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	walDir := filepath.Join(t.TempDir(), "wal")
	j, err := hpcfail.OpenWAL(walDir, hpcfail.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	kctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	chunks := 0
	_, _, err = hpcfail.LoadLogsStreamContext(kctx, dir, topology.SchedulerSlurm, hpcfail.StreamOptions{
		Workers: 2, ChunkLines: 100, Journal: j,
		OnChunk: func(string, int) {
			if chunks++; chunks == 5 {
				cancel()
			}
		},
	})
	if !errors.Is(err, hpcfail.ErrInterrupted) {
		t.Fatalf("kill run: want ErrInterrupted, got %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	o.wal = walDir
	o.resume = true
	var got bytes.Buffer
	if err := run(context.Background(), o, &got, io.Discard); err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if got.String() != want.String() {
		t.Errorf("resumed replay diverges from uninterrupted run (%d vs %d bytes)", got.Len(), want.Len())
	}
}

// TestRunWatchIngestInterruptMessaging: a signal during ingestion
// surfaces the partial ledger and the resume hint.
func TestRunWatchIngestInterruptMessaging(t *testing.T) {
	dir := writeTestLogs(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := watchOpts(dir)
	o.wal = filepath.Join(t.TempDir(), "wal")
	var errOut bytes.Buffer
	err := run(ctx, o, io.Discard, &errOut)
	if !errors.Is(err, hpcfail.ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if !strings.Contains(errOut.String(), "rerun with -resume") {
		t.Errorf("stderr lacks resume hint:\n%s", errOut.String())
	}
}
