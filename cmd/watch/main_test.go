package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hpcfail"
)

func writeTestLogs(t *testing.T) string {
	t.Helper()
	p, err := hpcfail.SystemProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec.Nodes = 384
	p.Spec.CabinetCols = 2
	p.FloodBladeIdx = nil
	p.FloodStopIdx = -1
	p.Workload.MeanInterarrival = 30 * time.Minute
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scn, err := hpcfail.Simulate(p, start, start.AddDate(0, 0, 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "logs")
	if err := hpcfail.WriteLogs(dir, scn); err != nil {
		t.Fatal(err)
	}
	return dir
}

func watchOpts(dir string) options {
	return options{logs: dir, sched: "slurm", alarms: true}
}

func TestRunWatch(t *testing.T) {
	dir := writeTestLogs(t)
	if err := run(watchOpts(dir), io.Discard, io.Discard); err != nil {
		t.Fatalf("run with alarms: %v", err)
	}
	o := watchOpts(dir)
	o.alarms = false
	if err := run(o, io.Discard, io.Discard); err != nil {
		t.Fatalf("run without alarms: %v", err)
	}
	o = watchOpts(dir)
	o.stream = true
	o.workers = 2
	if err := run(o, io.Discard, io.Discard); err != nil {
		t.Fatalf("run -stream: %v", err)
	}
	if err := run(watchOpts(t.TempDir()), io.Discard, io.Discard); err == nil {
		t.Error("empty directory should error")
	}
}

func TestRunWatchChaosReplay(t *testing.T) {
	dir := writeTestLogs(t)
	// Shuffled delivery absorbed by the reorder buffer.
	o := watchOpts(dir)
	o.reorder = time.Hour
	o.chaos = "mode=shuffle,intensity=0.5,seed=3"
	if err := run(o, io.Discard, io.Discard); err != nil {
		t.Fatalf("chaos replay: %v", err)
	}
	// Every mode at 20% intensity must survive without error.
	for _, mode := range []string{"drop", "truncate", "garble", "duplicate", "shuffle", "clockskew", "interleave"} {
		o := watchOpts(dir)
		o.reorder = time.Minute
		o.chaos = "mode=" + mode + ",intensity=0.2,seed=9"
		if err := run(o, io.Discard, io.Discard); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
	o = watchOpts(dir)
	o.chaos = "mode=nope,intensity=0.2"
	if err := run(o, io.Discard, io.Discard); err == nil {
		t.Error("bad chaos spec should error")
	}
}

func TestRunWatchSurvivesDamagedDir(t *testing.T) {
	dir := writeTestLogs(t)
	// Empty one stream, delete another: the replay must still run.
	if err := os.WriteFile(filepath.Join(dir, "erd.log"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "controller-bc.log")); err != nil {
		t.Fatal(err)
	}
	if err := run(watchOpts(dir), io.Discard, io.Discard); err != nil {
		t.Fatalf("damaged dir: %v", err)
	}
}
