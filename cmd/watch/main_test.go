package main

import (
	"path/filepath"
	"testing"
	"time"

	"hpcfail"
)

func writeTestLogs(t *testing.T) string {
	t.Helper()
	p, err := hpcfail.SystemProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec.Nodes = 384
	p.Spec.CabinetCols = 2
	p.FloodBladeIdx = nil
	p.FloodStopIdx = -1
	p.Workload.MeanInterarrival = 30 * time.Minute
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scn, err := hpcfail.Simulate(p, start, start.AddDate(0, 0, 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "logs")
	if err := hpcfail.WriteLogs(dir, scn); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunWatch(t *testing.T) {
	dir := writeTestLogs(t)
	if err := run(dir, "slurm", true); err != nil {
		t.Fatalf("run with alarms: %v", err)
	}
	if err := run(dir, "slurm", false); err != nil {
		t.Fatalf("run without alarms: %v", err)
	}
	if err := run(t.TempDir(), "slurm", true); err == nil {
		t.Error("empty directory should error")
	}
}
