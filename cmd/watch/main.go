// Command watch replays a log directory through the ONLINE pipeline:
// records stream in time order into a core.Watcher, which emits alarms
// (early-warning bursts, with external corroboration when present) and
// confirmed failures the moment their log lines arrive — the shape a
// production health monitor would take.
//
//	watch -logs ./logs -scheduler slurm
//
// The ingestion layer is damage-tolerant: unreadable or empty files are
// skipped with a warning, malformed lines are quarantined, and the
// replay reports what was lost. -chaos injects record-level faults into
// the replay itself (shuffled delivery, drops, clock skew …) and
// -reorder sizes the watcher's re-sequencing buffer that absorbs them.
// -stream ingests through the sharded streaming loader; the replayed
// record sequence is identical either way.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hpcfail"
	"hpcfail/internal/core"
	"hpcfail/internal/topology"
)

// options carries the parsed command line.
type options struct {
	logs    string
	sched   string
	alarms  bool
	reorder time.Duration
	chaos   string
	stream  bool
	workers int
	shards  int
}

func main() {
	var o options
	flag.StringVar(&o.logs, "logs", "logs", "log directory")
	flag.StringVar(&o.sched, "scheduler", "slurm", "scheduler dialect: slurm or torque")
	flag.BoolVar(&o.alarms, "alarms", true, "emit early-warning alarms")
	flag.DurationVar(&o.reorder, "reorder", 0, "reorder-buffer window (0 = feed in arrival order)")
	flag.StringVar(&o.chaos, "chaos", "", `inject record-level faults into the replay, e.g. "mode=shuffle,intensity=0.2"`)
	flag.BoolVar(&o.stream, "stream", false, "use the sharded streaming loader (same replay, bounded memory)")
	flag.IntVar(&o.workers, "workers", 0, "streaming parse workers (0 = GOMAXPROCS)")
	flag.IntVar(&o.shards, "shards", 0, "store shard count (0 = default)")
	flag.Parse()
	if err := run(o, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "watch:", err)
		os.Exit(1)
	}
}

func run(o options, stdout, stderr io.Writer) error {
	st := topology.SchedulerSlurm
	if o.sched == "torque" {
		st = topology.SchedulerTorque
	}
	var (
		store *hpcfail.Store
		rep   *hpcfail.IngestReport
		err   error
	)
	if o.stream {
		var ss *hpcfail.ShardedStore
		ss, rep, err = hpcfail.LoadLogsStream(o.logs, st,
			hpcfail.StreamOptions{Workers: o.workers, Shards: o.shards})
		if err == nil {
			store = ss.Merged()
		}
	} else {
		store, rep, err = hpcfail.LoadLogsReport(o.logs, st)
	}
	if err != nil {
		return err
	}
	for _, w := range rep.Warnings() {
		fmt.Fprintln(stderr, "warning:", w)
	}
	if store.Len() == 0 {
		return fmt.Errorf("no records under %s", o.logs)
	}

	recs := store.All()
	if o.chaos != "" {
		ccfg, err := hpcfail.ParseChaosSpec(o.chaos)
		if err != nil {
			return fmt.Errorf("bad -chaos: %w", err)
		}
		inj := hpcfail.NewChaosInjector(ccfg)
		recs = inj.CorruptRecords(recs)
		fmt.Fprintln(stderr, inj.Report.String())
	}

	detections, alarms := 0, 0
	w := core.NewWatcher(core.DefaultConfig(), func(d core.Detection) {
		detections++
		fmt.Fprintf(stdout, "%s FAILURE  %-12s terminal=%s", d.Time.Format(time.RFC3339), d.Node, d.Terminal)
		if d.JobID != 0 {
			fmt.Fprintf(stdout, " job=%d", d.JobID)
		}
		fmt.Fprintln(stdout)
	})
	w.ReorderWindow = o.reorder
	if o.alarms {
		w.OnAlarm = func(a core.Alarm) {
			alarms++
			ext := ""
			if a.HasExternal {
				ext = " +external"
			}
			fmt.Fprintf(stdout, "%s ALARM    %-12s precursor burst%s\n", a.Time.Format(time.RFC3339), a.Node, ext)
		}
	}
	w.FeedAll(recs)

	fmt.Fprintf(stdout, "\nreplayed %d records: %d alarms, %d confirmed failures\n", len(recs), alarms, detections)
	fmt.Fprintln(stdout, rep.String())
	ws := w.Stats()
	fmt.Fprintf(stdout, "watcher: %d out-of-order arrivals, %d state entries evicted\n", ws.Reordered, ws.Evicted)
	if rep.Degraded() || len(rep.Missing) > 0 {
		fmt.Fprintf(stdout, "degraded ingest: %d files skipped, %d streams missing, %d lines quarantined\n",
			len(rep.Skipped), len(rep.Missing), rep.TotalQuarantined())
	}
	return nil
}
