// Command watch replays a log directory through the ONLINE pipeline:
// records stream in time order into a core.Watcher, which emits alarms
// (early-warning bursts, with external corroboration when present) and
// confirmed failures the moment their log lines arrive — the shape a
// production health monitor would take.
//
//	watch -logs ./logs -scheduler slurm
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hpcfail"
	"hpcfail/internal/core"
	"hpcfail/internal/topology"
)

func main() {
	var (
		logs   = flag.String("logs", "logs", "log directory")
		sched  = flag.String("scheduler", "slurm", "scheduler dialect: slurm or torque")
		alarms = flag.Bool("alarms", true, "emit early-warning alarms")
	)
	flag.Parse()
	if err := run(*logs, *sched, *alarms); err != nil {
		fmt.Fprintln(os.Stderr, "watch:", err)
		os.Exit(1)
	}
}

func run(dir, sched string, wantAlarms bool) error {
	st := topology.SchedulerSlurm
	if sched == "torque" {
		st = topology.SchedulerTorque
	}
	store, _, err := hpcfail.LoadLogs(dir, st)
	if err != nil {
		return err
	}
	if store.Len() == 0 {
		return fmt.Errorf("no records under %s", dir)
	}
	detections, alarms := 0, 0
	w := core.NewWatcher(core.DefaultConfig(), func(d core.Detection) {
		detections++
		fmt.Printf("%s FAILURE  %-12s terminal=%s", d.Time.Format(time.RFC3339), d.Node, d.Terminal)
		if d.JobID != 0 {
			fmt.Printf(" job=%d", d.JobID)
		}
		fmt.Println()
	})
	if wantAlarms {
		w.OnAlarm = func(a core.Alarm) {
			alarms++
			ext := ""
			if a.HasExternal {
				ext = " +external"
			}
			fmt.Printf("%s ALARM    %-12s precursor burst%s\n", a.Time.Format(time.RFC3339), a.Node, ext)
		}
	}
	w.FeedAll(store.All())
	fmt.Printf("\nreplayed %d records: %d alarms, %d confirmed failures\n", store.Len(), alarms, detections)
	return nil
}
