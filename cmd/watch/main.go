// Command watch replays a log directory through the ONLINE pipeline:
// records stream in time order into a core.Watcher, which emits alarms
// (early-warning bursts, with external corroboration when present) and
// confirmed failures the moment their log lines arrive — the shape a
// production health monitor would take.
//
//	watch -logs ./logs -scheduler slurm
//
// The ingestion layer is damage-tolerant: unreadable or empty files are
// skipped with a warning, malformed lines are quarantined, and the
// replay reports what was lost. -chaos injects record-level faults into
// the replay itself (shuffled delivery, drops, clock skew …) and
// -reorder sizes the watcher's re-sequencing buffer that absorbs them.
// -stream ingests through the sharded streaming loader; the replayed
// record sequence is identical either way.
//
// The replay is crash-safe end to end: -wal journals the streaming
// ingestion so an interrupted load resumes at the last chunk boundary,
// and -checkpoint persists the watcher's detection state every -every
// interval and on SIGINT/SIGTERM. A later run with -resume restores
// both and continues with no duplicate and no missed detections.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hpcfail"
	"hpcfail/internal/core"
	"hpcfail/internal/prof"
	"hpcfail/internal/render"
	"hpcfail/internal/topology"
	"hpcfail/internal/version"
)

// options carries the parsed command line.
type options struct {
	logs       string
	sched      string
	alarms     bool
	reorder    time.Duration
	chaos      string
	stream     bool
	workers    int
	shards     int
	wal        string
	checkpoint string
	every      time.Duration
	resume     bool
	mine       bool
}

func main() {
	var o options
	flag.StringVar(&o.logs, "logs", "logs", "log directory")
	flag.StringVar(&o.sched, "scheduler", "slurm", "scheduler dialect: slurm or torque")
	flag.BoolVar(&o.alarms, "alarms", true, "emit early-warning alarms")
	flag.DurationVar(&o.reorder, "reorder", 0, "reorder-buffer window (0 = feed in arrival order)")
	flag.StringVar(&o.chaos, "chaos", "", `inject record-level faults into the replay, e.g. "mode=shuffle,intensity=0.2"`)
	flag.BoolVar(&o.stream, "stream", false, "use the sharded streaming loader (same replay, bounded memory)")
	flag.IntVar(&o.workers, "workers", 0, "streaming parse workers (0 = GOMAXPROCS)")
	flag.IntVar(&o.shards, "shards", 0, "store shard count (0 = default)")
	flag.StringVar(&o.wal, "wal", "", "ingestion checkpoint-journal directory (implies -stream)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "watcher snapshot file, written every -every and on shutdown")
	flag.DurationVar(&o.every, "every", time.Minute, "checkpoint interval for -checkpoint")
	flag.BoolVar(&o.resume, "resume", false, "resume: replay the -wal journal and restore the -checkpoint snapshot")
	flag.BoolVar(&o.mine, "mine", false, "mine templates from quarantined/unclassified lines; print CANDIDATE promotions and a summary")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	showVer := flag.Bool("version", false, "print build version and exit")

	flag.Parse()
	if *showVer {
		version.Print(os.Stdout, "watch")
		return
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "watch:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err = run(ctx, o, os.Stdout, os.Stderr)
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "watch:", err)
		os.Exit(1)
	}
}

// ingest loads the corpus per the options. On an interrupted journaled
// load the partial report comes back with the error.
func ingest(ctx context.Context, o options, st topology.SchedulerType) (*hpcfail.Store, *hpcfail.IngestReport, error) {
	if o.stream || o.wal != "" {
		sopts := hpcfail.StreamOptions{Workers: o.workers, Shards: o.shards}
		if o.wal != "" {
			j, err := hpcfail.OpenWAL(o.wal, hpcfail.WALOptions{})
			if err != nil {
				return nil, nil, fmt.Errorf("open -wal journal: %w", err)
			}
			defer j.Close()
			sopts.Journal = j
		}
		var (
			ss  *hpcfail.ShardedStore
			rep *hpcfail.IngestReport
			err error
		)
		if o.resume && o.wal != "" {
			ss, rep, err = hpcfail.ResumeLogs(ctx, o.logs, st, sopts)
		} else {
			ss, rep, err = hpcfail.LoadLogsStreamContext(ctx, o.logs, st, sopts)
		}
		if err != nil {
			return nil, rep, err
		}
		return ss.Merged(), rep, nil
	}
	store, rep, err := hpcfail.LoadLogsReport(o.logs, st)
	return store, rep, err
}

// saveSnapshot and loadSnapshot are the shared atomic checkpoint
// persistence in core, used by both this command and the HTTP server.
func saveSnapshot(path string, w *core.Watcher) error { return core.SaveSnapshotFile(path, w) }

func loadSnapshot(path string, w *core.Watcher) (bool, error) {
	return core.LoadSnapshotFile(path, w)
}

func run(ctx context.Context, o options, stdout, stderr io.Writer) error {
	st := topology.SchedulerSlurm
	if o.sched == "torque" {
		st = topology.SchedulerTorque
	}
	if o.resume && o.wal == "" && o.checkpoint == "" {
		return fmt.Errorf("-resume requires -wal and/or -checkpoint (the state to resume from)")
	}
	store, rep, err := ingest(ctx, o, st)
	if err != nil {
		render.Interrupted(stderr, err, rep, "ingestion checkpointed; rerun with -resume to continue")
		return err
	}
	render.Warnings(stderr, rep.Warnings(), 0)
	if store.Len() == 0 {
		return fmt.Errorf("no records under %s", o.logs)
	}

	recs := store.All()
	if o.chaos != "" {
		ccfg, err := hpcfail.ParseChaosSpec(o.chaos)
		if err != nil {
			return fmt.Errorf("bad -chaos: %w", err)
		}
		inj := hpcfail.NewChaosInjector(ccfg)
		recs = inj.CorruptRecords(recs)
		fmt.Fprintln(stderr, inj.Report.String())
	}

	detections, alarms := 0, 0
	w := core.NewWatcher(core.DefaultConfig(), func(d core.Detection) {
		detections++
		fmt.Fprintf(stdout, "%s FAILURE  %-12s terminal=%s", d.Time.Format(time.RFC3339), d.Node, d.Terminal)
		if d.JobID != 0 {
			fmt.Fprintf(stdout, " job=%d", d.JobID)
		}
		fmt.Fprintln(stdout)
	})
	w.ReorderWindow = o.reorder

	// -mine: quarantined lines never became records, so they are fed
	// once up front; unclassified records join the miner as the replay
	// reaches them, which interleaves CANDIDATE promotions with the
	// alarm stream in replay order.
	var m *hpcfail.TemplateMiner
	if o.mine {
		m = hpcfail.NewMiner(hpcfail.MinerConfig{})
		m.OnPromote = func(c hpcfail.MinedCandidate) {
			burst := ""
			if c.Burst {
				burst = " (burst)"
			}
			fmt.Fprintf(stdout, "CANDIDATE %-24s count=%d%s template=%q\n", c.Category, c.Count, burst, c.Template)
		}
		for i := range rep.Streams {
			rep.Streams[i].EachQuarantined(m.Ingest)
		}
	}
	if o.alarms {
		w.OnAlarm = func(a core.Alarm) {
			alarms++
			ext := ""
			if a.HasExternal {
				ext = " +external"
			}
			fmt.Fprintf(stdout, "%s ALARM    %-12s precursor burst%s\n", a.Time.Format(time.RFC3339), a.Node, ext)
		}
	}

	// Resume: the snapshot carries the watcher's complete detection
	// state plus how far into the (deterministic) record sequence the
	// previous run got, so the replay re-enters exactly where it left
	// off — no duplicate and no missed detections.
	start := 0
	if o.resume && o.checkpoint != "" {
		restored, err := loadSnapshot(o.checkpoint, w)
		if err != nil {
			return err
		}
		if restored {
			start = w.Stats().Fed
			if start > len(recs) {
				return fmt.Errorf("checkpoint is ahead of the corpus (%d fed, %d records) — flags or logs changed since", start, len(recs))
			}
			fmt.Fprintf(stderr, "restored watcher checkpoint: skipping %d already-replayed records\n", start)
		}
	}

	var tick *time.Ticker
	if o.checkpoint != "" {
		every := o.every
		if every <= 0 {
			every = time.Minute
		}
		tick = time.NewTicker(every)
		defer tick.Stop()
	}
	for i := start; i < len(recs); i++ {
		if ctx.Err() != nil {
			if o.checkpoint != "" {
				if err := saveSnapshot(o.checkpoint, w); err != nil {
					return fmt.Errorf("write shutdown checkpoint: %w", err)
				}
			}
			fmt.Fprintf(stderr, "interrupted after %d/%d records; rerun with -resume to continue\n", i, len(recs))
			return fmt.Errorf("replay stopped at record %d/%d: %w", i, len(recs), hpcfail.ErrInterrupted)
		}
		if tick != nil {
			select {
			case <-tick.C:
				if err := saveSnapshot(o.checkpoint, w); err != nil {
					fmt.Fprintln(stderr, "warning: checkpoint write failed:", err)
				}
			default:
			}
		}
		if m != nil && recs[i].Category == "unclassified" && recs[i].Msg != "" {
			m.Ingest(recs[i].Msg)
		}
		w.Feed(recs[i])
	}
	w.Flush()
	if o.checkpoint != "" {
		if err := saveSnapshot(o.checkpoint, w); err != nil {
			fmt.Fprintln(stderr, "warning: final checkpoint write failed:", err)
		}
	}

	ws := w.Stats()
	fmt.Fprintf(stdout, "\nreplayed %d records: %d alarms, %d confirmed failures\n", ws.Fed, alarms, detections)
	fmt.Fprintln(stdout, rep.String())
	fmt.Fprintf(stdout, "watcher: %d out-of-order arrivals, %d state entries evicted\n", ws.Reordered, ws.Evicted)
	if rep.Degraded() || len(rep.Missing) > 0 {
		fmt.Fprintf(stdout, "degraded ingest: %d files skipped, %d streams missing, %d lines quarantined\n",
			len(rep.Skipped), len(rep.Missing), rep.TotalQuarantined())
	}
	if m != nil {
		views, _ := m.TemplatesSince(0, 0)
		render.MinedTemplates(stdout, m.Stats(), views)
	}
	return nil
}
