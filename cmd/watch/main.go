// Command watch replays a log directory through the ONLINE pipeline:
// records stream in time order into a core.Watcher, which emits alarms
// (early-warning bursts, with external corroboration when present) and
// confirmed failures the moment their log lines arrive — the shape a
// production health monitor would take.
//
//	watch -logs ./logs -scheduler slurm
//
// The ingestion layer is damage-tolerant: unreadable or empty files are
// skipped with a warning, malformed lines are quarantined, and the
// replay reports what was lost. -chaos injects record-level faults into
// the replay itself (shuffled delivery, drops, clock skew …) and
// -reorder sizes the watcher's re-sequencing buffer that absorbs them.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hpcfail"
	"hpcfail/internal/core"
	"hpcfail/internal/topology"
)

func main() {
	var (
		logs    = flag.String("logs", "logs", "log directory")
		sched   = flag.String("scheduler", "slurm", "scheduler dialect: slurm or torque")
		alarms  = flag.Bool("alarms", true, "emit early-warning alarms")
		reorder = flag.Duration("reorder", 0, "reorder-buffer window (0 = feed in arrival order)")
		chaos   = flag.String("chaos", "", `inject record-level faults into the replay, e.g. "mode=shuffle,intensity=0.2"`)
	)
	flag.Parse()
	if err := run(*logs, *sched, *alarms, *reorder, *chaos); err != nil {
		fmt.Fprintln(os.Stderr, "watch:", err)
		os.Exit(1)
	}
}

func run(dir, sched string, wantAlarms bool, reorder time.Duration, chaosSpec string) error {
	st := topology.SchedulerSlurm
	if sched == "torque" {
		st = topology.SchedulerTorque
	}
	store, rep, err := hpcfail.LoadLogsReport(dir, st)
	if err != nil {
		return err
	}
	for _, w := range rep.Warnings() {
		fmt.Fprintln(os.Stderr, "warning:", w)
	}
	if store.Len() == 0 {
		return fmt.Errorf("no records under %s", dir)
	}

	recs := store.All()
	if chaosSpec != "" {
		ccfg, err := hpcfail.ParseChaosSpec(chaosSpec)
		if err != nil {
			return fmt.Errorf("bad -chaos: %w", err)
		}
		inj := hpcfail.NewChaosInjector(ccfg)
		recs = inj.CorruptRecords(recs)
		fmt.Fprintln(os.Stderr, inj.Report.String())
	}

	detections, alarms := 0, 0
	w := core.NewWatcher(core.DefaultConfig(), func(d core.Detection) {
		detections++
		fmt.Printf("%s FAILURE  %-12s terminal=%s", d.Time.Format(time.RFC3339), d.Node, d.Terminal)
		if d.JobID != 0 {
			fmt.Printf(" job=%d", d.JobID)
		}
		fmt.Println()
	})
	w.ReorderWindow = reorder
	if wantAlarms {
		w.OnAlarm = func(a core.Alarm) {
			alarms++
			ext := ""
			if a.HasExternal {
				ext = " +external"
			}
			fmt.Printf("%s ALARM    %-12s precursor burst%s\n", a.Time.Format(time.RFC3339), a.Node, ext)
		}
	}
	w.FeedAll(recs)

	fmt.Printf("\nreplayed %d records: %d alarms, %d confirmed failures\n", len(recs), alarms, detections)
	fmt.Println(rep.String())
	ws := w.Stats()
	fmt.Printf("watcher: %d out-of-order arrivals, %d state entries evicted\n", ws.Reordered, ws.Evicted)
	if rep.Degraded() || len(rep.Missing) > 0 {
		fmt.Printf("degraded ingest: %d files skipped, %d streams missing, %d lines quarantined\n",
			len(rep.Skipped), len(rep.Missing), rep.TotalQuarantined())
	}
	return nil
}
