// Command serve runs the online diagnosis service: a long-running HTTP
// server that owns a live log corpus and a streaming watcher.
//
//	serve -logs ./logs -addr :8080
//
// Endpoints:
//
//	POST /v1/ingest     batched raw log lines ({"batches":[{"stream":"console","lines":[...]}]})
//	GET  /v1/diagnose   diagnosis over the corpus so far; byte-identical
//	                    to cmd/diagnose output. Query params: node, from,
//	                    to (RFC3339), window (Go duration), format=json,
//	                    full=true
//	GET  /v1/alarms     SSE stream of watcher alarms and confirmed failures
//	GET  /v1/wal        NDJSON replication stream (?after=<watermark>);
//	                    requires -repl-wal
//	POST /v1/promote    mint the next fencing epoch and accept writes
//	GET  /v1/remediations  remediation ticket ledger (?since=<id>); POST
//	                    {"kill":true|false} toggles the global kill switch
//	GET  /v1/templates  live mined-template table (?since=<seq>, ?limit=N)
//	                    or, with ?format=profile, the canonical bootstrap
//	                    profile; requires -mine
//	GET  /healthz       liveness (503 while draining)
//	GET  /metrics       Prometheus text exposition
//	     /debug/pprof   the usual suspects
//
// Replication: -repl-wal journals every accepted ingest before it
// commits, so a restart replays exactly the acknowledged history, and
// /v1/wal streams it to replicas. -replica-of boots this node as a read
// replica of a primary (a base URL to stream /v1/wal from, or the
// primary's WAL directory to tail on a shared filesystem): ingest is
// answered 421 toward -primary-url, while /v1/diagnose serves the
// replicated corpus — ?min_watermark=W blocks up to -max-wait for
// replication to catch up, then 412s toward the primary. Killing the
// primary and POSTing /v1/promote (or -auto-promote confirming stream
// silence with a failed /healthz probe of the primary) mints the next
// fencing epoch: the replica starts accepting
// writes, and anything the deposed primary still produces is fenced
// off every node that saw the promotion.
//
// -remedy closes the loop: watcher detections and alarms feed an SOP
// remediation engine (admindown, drain + requeue, suspect, warm swap,
// notify) acting on an in-process simulated cluster, with idempotency
// pre-checks, safety guards and an append-only ticket ledger.
//
// -logs bootstraps the corpus from a directory (sequential or -stream
// sharded/WAL-journaled loading, exactly like cmd/diagnose); the
// bootstrap is applied to the incremental diagnosis engine and fully
// diagnosed before serving starts, so startup pays the whole pipeline
// once and the first query is already memoized. Each ingest queues a
// delta that the first query at the new watermark folds in at cost
// proportional to the batch — post-ingest latency does not re-pay the
// corpus (staleness and apply duration are visible on /healthz and
// /metrics). Identical concurrent queries are coalesced, responses are
// cached until the next ingest bumps the watermark, and load beyond
// -max-inflight is shed with 429 + Retry-After. On SIGINT/SIGTERM the
// server drains in-flight
// requests and persists the watcher state to -checkpoint; a restart
// with -resume restores it, so alarm suppression and refractory merges
// survive restarts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hpcfail"
	"hpcfail/internal/render"
	"hpcfail/internal/replica"
	"hpcfail/internal/topology"
	"hpcfail/internal/version"
)

type options struct {
	addr         string
	logs         string
	sched        string
	stream       bool
	workers      int
	shards       int
	wal          string
	resume       bool
	checkpoint   string
	cacheEntries int
	maxInflight  int
	queryTimeout time.Duration
	drainTimeout time.Duration
	remedy       bool
	mine         bool
	mineMax      int

	replWAL        string
	replSync       bool
	ingestGroupMax int
	replicaOf      string
	primaryURL     string
	promote        bool
	autoPromote    time.Duration
	heartbeat      time.Duration
	maxWait        time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.logs, "logs", "", "bootstrap log directory (empty = start with an empty corpus)")
	flag.StringVar(&o.sched, "scheduler", "slurm", "scheduler dialect: slurm or torque")
	flag.BoolVar(&o.stream, "stream", false, "bootstrap through the sharded streaming loader")
	flag.IntVar(&o.workers, "workers", 0, "streaming parse workers (0 = GOMAXPROCS)")
	flag.IntVar(&o.shards, "shards", 0, "store shard count (0 = default)")
	flag.StringVar(&o.wal, "wal", "", "bootstrap checkpoint-journal directory (implies -stream)")
	flag.BoolVar(&o.resume, "resume", false, "resume: replay the -wal journal and restore the -checkpoint watcher state")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "watcher snapshot file, written on shutdown")
	flag.IntVar(&o.cacheEntries, "cache", 256, "rendered-response cache entries")
	flag.IntVar(&o.maxInflight, "max-inflight", 64, "concurrently served requests before shedding with 429")
	flag.DurationVar(&o.queryTimeout, "query-timeout", 30*time.Second, "per-diagnosis compute budget")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 15*time.Second, "shutdown grace for in-flight requests")
	flag.BoolVar(&o.remedy, "remedy", false, "enable the closed-loop remediation engine (/v1/remediations)")
	flag.BoolVar(&o.mine, "mine", false, "mine templates from quarantined/unclassified lines (/v1/templates, candidate SSE events)")
	flag.IntVar(&o.mineMax, "mine-max-templates", 0, "miner memory budget in live templates (0 = default)")
	flag.StringVar(&o.replWAL, "repl-wal", "", "replication WAL directory (journals ingests, serves /v1/wal, replays on restart)")
	flag.BoolVar(&o.replSync, "repl-sync", false, "fsync the replication WAL on every entry")
	flag.IntVar(&o.ingestGroupMax, "ingest-group-max", 0, "max writes one group commit's fsync may cover (0 = unbounded); lower caps ack-latency spread under bursts at the cost of more fsyncs")
	flag.StringVar(&o.replicaOf, "replica-of", "", "run as a read replica of this primary (base URL, or its WAL directory)")
	flag.StringVar(&o.primaryURL, "primary-url", "", "primary advertised on 421/412 responses (defaults to -replica-of when it is a URL)")
	flag.BoolVar(&o.promote, "promote", false, "boot promoted: replay -repl-wal, mint the next epoch, accept writes")
	flag.DurationVar(&o.autoPromote, "auto-promote", 0, "self-promote after the primary has been silent this long AND fails a /healthz probe (0 = never)")
	flag.DurationVar(&o.heartbeat, "heartbeat", 15*time.Second, "SSE and /v1/wal heartbeat interval")
	flag.DurationVar(&o.maxWait, "max-wait", 2*time.Second, "min_watermark wait budget before 412")
	showVer := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *showVer {
		version.Print(os.Stdout, "serve")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// primaryAlive affirmatively probes the primary's /healthz. Any HTTP
// response — even a 503 while it drains — means a live primary process
// that may still be acking writes, so self-promotion must not proceed;
// only a transport error (refused, timeout, unroutable) counts as down.
func primaryAlive(c *http.Client, url string) bool {
	resp, err := c.Get(url)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	resp.Body.Close()
	return true
}

// bootstrap loads the -logs corpus the same way cmd/diagnose would.
func bootstrap(ctx context.Context, o options, st topology.SchedulerType) (*hpcfail.Store, *hpcfail.IngestReport, error) {
	if o.stream || o.wal != "" {
		sopts := hpcfail.StreamOptions{Workers: o.workers, Shards: o.shards}
		if o.wal != "" {
			j, err := hpcfail.OpenWAL(o.wal, hpcfail.WALOptions{})
			if err != nil {
				return nil, nil, fmt.Errorf("open -wal journal: %w", err)
			}
			defer j.Close()
			sopts.Journal = j
		}
		var (
			ss  *hpcfail.ShardedStore
			rep *hpcfail.IngestReport
			err error
		)
		if o.resume && o.wal != "" {
			ss, rep, err = hpcfail.ResumeLogs(ctx, o.logs, st, sopts)
		} else {
			ss, rep, err = hpcfail.LoadLogsStreamContext(ctx, o.logs, st, sopts)
		}
		if err != nil {
			return nil, rep, err
		}
		return ss.Merged(), rep, nil
	}
	return hpcfail.LoadLogsReport(o.logs, st)
}

func run(ctx context.Context, o options, stdout, stderr io.Writer) error {
	var st topology.SchedulerType
	switch o.sched {
	case "slurm":
		st = topology.SchedulerSlurm
	case "torque":
		st = topology.SchedulerTorque
	default:
		return fmt.Errorf("unknown scheduler %q (want slurm or torque)", o.sched)
	}

	primaryURL := o.primaryURL
	if primaryURL == "" && strings.HasPrefix(o.replicaOf, "http") {
		primaryURL = o.replicaOf
	}
	srv := hpcfail.NewServer(hpcfail.ServeConfig{
		Scheduler:        st,
		MaxInflight:      o.maxInflight,
		QueryTimeout:     o.queryTimeout,
		CacheEntries:     o.cacheEntries,
		CheckpointPath:   o.checkpoint,
		EnableRemedy:     o.remedy,
		EnableMiner:      o.mine,
		Miner:            hpcfail.MinerConfig{MaxTemplates: o.mineMax},
		ReplicationDir:   o.replWAL,
		ReplicationSync:  o.replSync,
		IngestGroupMax:   o.ingestGroupMax,
		PrimaryURL:       primaryURL,
		MaxWatermarkWait: o.maxWait,
		SSEHeartbeat:     o.heartbeat,
	})

	if o.logs != "" {
		store, rep, err := bootstrap(ctx, o, st)
		if err != nil {
			render.Interrupted(stderr, err, rep, "bootstrap checkpointed; restart with -resume to continue")
			return err
		}
		render.Warnings(stderr, rep.Warnings(), 5)
		srv.Seed(store, rep)
		fmt.Fprintf(stdout, "bootstrapped %d records from %s\n", store.Len(), o.logs)
	}
	if o.resume && o.checkpoint != "" {
		restored, err := srv.RestoreCheckpoint(o.checkpoint)
		if err != nil {
			return fmt.Errorf("restore -checkpoint: %w", err)
		}
		if restored {
			fmt.Fprintf(stdout, "restored watcher checkpoint from %s\n", o.checkpoint)
		}
	}

	// Replication: replay the local journal (crash recovery), then take
	// the configured role.
	if err := srv.OpenReplicationLog(); err != nil {
		return fmt.Errorf("open -repl-wal: %w", err)
	}
	defer srv.CloseReplication()
	if o.replWAL != "" {
		fmt.Fprintf(stdout, "replication journal %s replayed to watermark %d (epoch %d)\n",
			o.replWAL, srv.Watermark(), srv.Epoch())
	}
	if o.promote {
		epoch, wm, err := srv.Promote()
		if err != nil {
			return fmt.Errorf("promote at boot: %w", err)
		}
		fmt.Fprintf(stdout, "promoted: serving as primary at epoch %d, watermark %d\n", epoch, wm)
	}

	tailCtx, stopTailing := context.WithCancel(ctx)
	defer stopTailing()
	if o.replicaOf != "" && !o.promote {
		srv.SetReadOnly(true)
		tailer := replica.NewTailer(replica.Config{
			Primary:       o.replicaOf,
			After:         srv.Watermark(),
			Epoch:         srv.Epoch(),
			SeedWatermark: srv.SeedWatermark(),
		}, srv.Apply)
		srv.SetReplicaStatus(tailer.Status)
		go func() {
			if err := tailer.Run(tailCtx); err != nil {
				fmt.Fprintln(stderr, "replication stopped:", err)
			}
		}()
		if o.autoPromote > 0 {
			healthURL := ""
			if strings.HasPrefix(o.replicaOf, "http") {
				healthURL = strings.TrimSuffix(o.replicaOf, "/") + "/healthz"
			} else if primaryURL != "" {
				healthURL = strings.TrimSuffix(primaryURL, "/") + "/healthz"
			}
			go func() {
				probe := &http.Client{Timeout: 2 * time.Second}
				tick := time.NewTicker(o.autoPromote / 4)
				defer tick.Stop()
				for {
					select {
					case <-tailCtx.Done():
						return
					case <-tick.C:
					}
					st := tailer.Status()
					if st.Err != nil {
						// The tailer stopped fatally (seed mismatch, gap, apply
						// error). That is replication divergence, not primary
						// death — the primary may be alive and acking writes, so
						// promoting here would split the brain. Operator problem.
						fmt.Fprintln(stderr, "auto-promote disabled: replication diverged, re-seed or promote manually:", st.Err)
						return
					}
					if time.Since(st.LastContact) <= o.autoPromote {
						continue
					}
					if healthURL != "" && primaryAlive(probe, healthURL) {
						// Our stream is silent but the primary answers /healthz:
						// a replication-path failure, not a dead primary. Keep
						// tailing (and retrying) rather than forking history.
						fmt.Fprintf(stderr, "primary silent for %s on the replication stream but %s still responds; not promoting\n",
							o.autoPromote, healthURL)
						continue
					}
					stopTailing()
					epoch, wm, err := srv.Promote()
					if err != nil {
						fmt.Fprintln(stderr, "auto-promote failed:", err)
						return
					}
					fmt.Fprintf(stdout, "primary silent for %s and unreachable; auto-promoted to epoch %d at watermark %d\n",
						o.autoPromote, epoch, wm)
					return
				}
			}()
		}
		fmt.Fprintf(stdout, "replica of %s (watermark %d, epoch %d)\n", o.replicaOf, srv.Watermark(), srv.Epoch())
	}

	httpSrv := &http.Server{Addr: o.addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(stdout, "serving on %s (watermark %d, %d records)\n", o.addr, srv.Watermark(), srv.Records())
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // bind failure etc.; ListenAndServe never returns nil
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting, terminate alarm streams, give
	// in-flight requests the grace window, then checkpoint the watcher.
	fmt.Fprintln(stdout, "shutdown requested; draining")
	srv.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "warning: drain incomplete:", err)
	}
	if err := srv.Checkpoint(); err != nil {
		return fmt.Errorf("write shutdown checkpoint: %w", err)
	}
	if o.checkpoint != "" {
		fmt.Fprintf(stdout, "watcher checkpoint written to %s\n", o.checkpoint)
	}
	fmt.Fprintln(stdout, "drained; bye")
	return nil
}
