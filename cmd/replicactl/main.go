// Command replicactl operates on a running serve node's replication
// role.
//
//	replicactl -addr http://localhost:8081 status
//	replicactl -addr http://localhost:8081 promote
//
// status prints the node's role, epoch, watermarks and (on a replica)
// lag and degraded state, read from /healthz. promote POSTs /v1/promote:
// the node mints the next fencing epoch, journals it, and starts
// accepting writes — the failover step after the primary dies.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"hpcfail/internal/version"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "serve base URL")
	timeout := flag.Duration("timeout", 10*time.Second, "request timeout")
	showVer := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *showVer {
		version.Print(os.Stdout, "replicactl")
		return
	}
	cmd := flag.Arg(0)
	if cmd == "" {
		fmt.Fprintln(os.Stderr, "replicactl: want a command: status or promote")
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}
	if err := run(client, strings.TrimSuffix(*addr, "/"), cmd, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "replicactl:", err)
		os.Exit(1)
	}
}

func run(client *http.Client, base, cmd string, stdout io.Writer) error {
	switch cmd {
	case "status":
		resp, err := client.Get(base + "/healthz")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var h struct {
			Status     string  `json:"status"`
			Role       string  `json:"role"`
			Epoch      uint64  `json:"epoch"`
			Records    int     `json:"records"`
			Watermark  uint64  `json:"watermark"`
			Diagnosed  uint64  `json:"diagnosed_watermark"`
			ReplicaLag *uint64 `json:"replica_lag_watermarks"`
			Degraded   *bool   `json:"replica_degraded"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			return fmt.Errorf("decoding /healthz: %w", err)
		}
		fmt.Fprintf(stdout, "%s %s epoch=%d watermark=%d diagnosed=%d records=%d",
			h.Role, h.Status, h.Epoch, h.Watermark, h.Diagnosed, h.Records)
		if h.ReplicaLag != nil {
			fmt.Fprintf(stdout, " lag=%d", *h.ReplicaLag)
		}
		if h.Degraded != nil {
			fmt.Fprintf(stdout, " degraded=%v", *h.Degraded)
		}
		fmt.Fprintln(stdout)
		return nil
	case "promote":
		resp, err := client.Post(base+"/v1/promote", "application/json", nil)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
			return fmt.Errorf("promote: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		}
		var p struct {
			Epoch     uint64 `json:"epoch"`
			Watermark uint64 `json:"watermark"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
			return fmt.Errorf("decoding promote response: %w", err)
		}
		fmt.Fprintf(stdout, "promoted: epoch=%d watermark=%d\n", p.Epoch, p.Watermark)
		return nil
	default:
		return fmt.Errorf("unknown command %q (want status or promote)", cmd)
	}
}
