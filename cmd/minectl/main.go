// Command minectl mines, merges and inspects log-template profiles —
// the bootstrap path for systems whose daemons have no static parsing
// profile yet.
//
//	minectl mine -logs ./logs [-scheduler slurm] [-min-count 2] [-o profile.json]
//	minectl merge -o merged.json a.json b.json ...
//	minectl show profile.json
//
// mine loads a corpus the same way cmd/diagnose does, feeds every line
// the static profiles rejected (quarantined or unclassified) through
// the online template miner, and writes the canonical bootstrap
// profile. The profile is deterministic for a given corpus: mining the
// same directory twice — or the same lines in any order — produces the
// same JSON. merge canonically combines profiles mined from separate
// corpora (or exported from running servers via GET
// /v1/templates?format=profile). show prints a profile's templates
// with counts and examples.
//
// A mined profile feeds back into the pipeline with
// `diagnose -mined-profile profile.json`, which reclaims the
// quarantined lines the profile classifies as structured records.
package main

import (
	"flag"
	"fmt"
	"os"

	"hpcfail"
	"hpcfail/internal/topology"
	"hpcfail/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "minectl:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	if len(args) == 0 {
		return fmt.Errorf("want a command: mine, merge or show")
	}
	switch args[0] {
	case "mine":
		return mine(args[1:], stdout)
	case "merge":
		return merge(args[1:], stdout)
	case "show":
		return show(args[1:], stdout)
	case "-version", "--version", "version":
		version.Print(stdout, "minectl")
		return nil
	default:
		return fmt.Errorf("unknown command %q (want mine, merge or show)", args[0])
	}
}

// writeProfile encodes p to path, or stdout when path is empty.
func writeProfile(p hpcfail.MinedProfile, path string, stdout *os.File) error {
	data, err := p.Encode()
	if err != nil {
		return err
	}
	if path == "" {
		_, err = stdout.Write(append(data, '\n'))
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readProfile(path string) (hpcfail.MinedProfile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return hpcfail.MinedProfile{}, err
	}
	p, err := hpcfail.DecodeMinedProfile(data)
	if err != nil {
		return hpcfail.MinedProfile{}, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

func mine(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("minectl mine", flag.ContinueOnError)
	logs := fs.String("logs", "logs", "log directory")
	sched := fs.String("scheduler", "slurm", "scheduler dialect: slurm or torque")
	minCount := fs.Uint64("min-count", 2, "drop templates seen fewer times than this")
	maxTemplates := fs.Int("max-templates", 0, "miner memory budget in live templates (0 = default)")
	out := fs.String("o", "", "output file (empty = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st := topology.SchedulerSlurm
	if *sched == "torque" {
		st = topology.SchedulerTorque
	}
	store, rep, err := hpcfail.LoadLogsReport(*logs, st)
	if err != nil {
		return err
	}
	m := hpcfail.NewMiner(hpcfail.MinerConfig{MaxTemplates: *maxTemplates})
	for i := range rep.Streams {
		rep.Streams[i].EachQuarantined(m.Ingest)
	}
	for _, r := range store.All() {
		if r.Category == "unclassified" && r.Msg != "" {
			m.Ingest(r.Msg)
		}
	}
	stats := m.Stats()
	fmt.Fprintf(os.Stderr, "mined %d lines into %d templates (%d promoted, %d evicted)\n",
		stats.LinesMined, stats.TemplatesLive, stats.Promoted, stats.Evicted)
	return writeProfile(m.Export(*minCount), *out, stdout)
}

func merge(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("minectl merge", flag.ContinueOnError)
	out := fs.String("o", "", "output file (empty = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("merge: want at least one profile file")
	}
	ps := make([]hpcfail.MinedProfile, 0, fs.NArg())
	for _, path := range fs.Args() {
		p, err := readProfile(path)
		if err != nil {
			return err
		}
		ps = append(ps, p)
	}
	return writeProfile(hpcfail.MergeMinedProfiles(ps...), *out, stdout)
}

func show(args []string, stdout *os.File) error {
	if len(args) != 1 {
		return fmt.Errorf("show: want exactly one profile file")
	}
	p, err := readProfile(args[0])
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "profile v%d: %d templates (token limit %d, byte limit %d)\n",
		p.Version, len(p.Templates), p.TokenLimit, p.ByteLimit)
	for _, t := range p.Templates {
		fmt.Fprintf(stdout, "  %6d  %-32s %s\n", t.Count, t.Category, t.Template)
		for _, ex := range t.Examples {
			fmt.Fprintf(stdout, "          e.g. %s\n", ex)
		}
	}
	return nil
}
