// Command loadgen drives an open-loop load against a running serve
// instance: requests are launched on a fixed-rate clock regardless of
// completions (so server slowdowns surface as latency and shed 429s,
// not as a politely backing-off client), with a bounded in-flight cap
// standing in for the client fleet size.
//
//	loadgen -url http://localhost:8080 -qps 200 -clients 32 -duration 10s -mix 0.2
//
// The mix splits traffic between POST /v1/ingest (synthetic console
// batches) and GET /v1/diagnose (drawn from a small query set so the
// server's cache and singleflight both get exercised). The run ends
// with a latency/throughput report per request kind; -out writes it as
// JSON for the serving-benchmark record.
//
// -replicas spreads the read side over a replica fleet: ingest always
// goes to -url (the single writer), while diagnose requests are dealt
// across primary plus replicas with a zipf-skewed pick (-zipf), the
// usual shape of a fleet behind an affinity-keeping load balancer. The
// report then carries per-target read latencies and the observed
// staleness distribution — for each read, how many watermarks the
// serving node trailed the highest ingest watermark this client had
// been acknowledged.
//
// -ingest-concurrency N adds a closed-loop fleet on top: N writers
// that each fire their next POST /v1/ingest the moment the previous
// ack lands. Where the open-loop mix measures latency at an offered
// rate, the closed loop measures durable-ingest *throughput* at a
// fixed concurrency — the report carries acks/s and an ack-latency
// histogram, the client-side view of group-commit fsync amortization
// (raise N against a ReplicationSync server and watch acks/s scale
// while per-ack latency holds near one fsync).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hpcfail/internal/version"
)

type options struct {
	url        string
	qps        float64
	clients    int
	duration   time.Duration
	mix        float64
	batch      int
	seed       int64
	out        string
	replicas   string
	zipfS      float64
	ingestConc int
	garbleFrac float64
}

func main() {
	var o options
	flag.StringVar(&o.url, "url", "http://localhost:8080", "serve base URL")
	flag.Float64Var(&o.qps, "qps", 100, "aggregate request launch rate")
	flag.IntVar(&o.clients, "clients", 16, "maximum in-flight requests (the simulated client fleet)")
	flag.DurationVar(&o.duration, "duration", 10*time.Second, "run length")
	flag.Float64Var(&o.mix, "mix", 0.2, "fraction of requests that ingest (rest diagnose)")
	flag.IntVar(&o.batch, "batch", 32, "lines per ingest batch")
	flag.Int64Var(&o.seed, "seed", 1, "random seed for the traffic mix")
	flag.StringVar(&o.out, "out", "", "write the JSON report here ('' = stdout summary only)")
	flag.StringVar(&o.replicas, "replicas", "", "comma-separated replica base URLs; reads spread over primary+replicas")
	flag.Float64Var(&o.zipfS, "zipf", 1.3, "zipf skew for the read-target pick (> 1; higher = hotter primary)")
	flag.IntVar(&o.ingestConc, "ingest-concurrency", 0, "closed-loop durable-ingest writers hammering POST /v1/ingest back-to-back for the whole run (0 = off); reports acks/s and the ack-latency histogram — the client-side view of group-commit fsync amortization")
	flag.Float64Var(&o.garbleFrac, "garble-frac", 0, "fraction of ingest lines replaced by unknown-daemon lines the server quarantines (exercises serve -mine; seeded, deterministic)")
	showVer := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *showVer {
		version.Print(os.Stdout, "loadgen")
		return
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// kindStats accumulates one request kind's outcomes.
type kindStats struct {
	mu        sync.Mutex
	latencies []time.Duration
	codes     map[int]int
	errors    int
}

func newKindStats() *kindStats { return &kindStats{codes: make(map[int]int)} }

func (s *kindStats) record(code int, d time.Duration, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.errors++
		return
	}
	s.codes[code]++
	if code == http.StatusOK {
		s.latencies = append(s.latencies, d)
	}
}

// quantile returns the q-quantile of the recorded OK latencies.
func (s *kindStats) quantile(q float64) time.Duration {
	if len(s.latencies) == 0 {
		return 0
	}
	sort.Slice(s.latencies, func(i, j int) bool { return s.latencies[i] < s.latencies[j] })
	i := int(q * float64(len(s.latencies)-1))
	return s.latencies[i]
}

// kindReport is the per-kind slice of the JSON report.
type kindReport struct {
	Launched int            `json:"launched"`
	OK       int            `json:"ok"`
	Codes    map[string]int `json:"codes"`
	Errors   int            `json:"errors"`
	P50Ms    float64        `json:"p50_ms"`
	P95Ms    float64        `json:"p95_ms"`
	P99Ms    float64        `json:"p99_ms"`
}

func (s *kindStats) report(launched int) kindReport {
	s.mu.Lock()
	codes := make(map[string]int, len(s.codes))
	for c, n := range s.codes {
		codes[fmt.Sprint(c)] = n
	}
	errs := s.errors
	s.mu.Unlock()
	return kindReport{
		Launched: launched,
		OK:       codes["200"],
		Codes:    codes,
		Errors:   errs,
		P50Ms:    float64(s.quantile(0.50)) / float64(time.Millisecond),
		P95Ms:    float64(s.quantile(0.95)) / float64(time.Millisecond),
		P99Ms:    float64(s.quantile(0.99)) / float64(time.Millisecond),
	}
}

// ackBucketUppersMs are the ack-latency histogram bucket upper bounds
// in milliseconds (a final +Inf bucket is implicit). The low end
// resolves sub-fsync acks (a write that rode another leader's group),
// the high end catches stalls behind a slow disk.
var ackBucketUppersMs = []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000}

// histBucket is one rendered histogram bucket (cumulative, like a
// Prometheus classic histogram).
type histBucket struct {
	LeMs  string `json:"le_ms"`
	Count uint64 `json:"count"`
}

// closedLoop drives and accounts the -ingest-concurrency writers.
type closedLoop struct {
	mu     sync.Mutex
	counts []uint64 // per-bucket, last entry is +Inf
	acks   uint64
	sum    time.Duration
	non200 int
	errors int
}

func newClosedLoop() *closedLoop {
	return &closedLoop{counts: make([]uint64, len(ackBucketUppersMs)+1)}
}

func (c *closedLoop) recordAck(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := sort.SearchFloat64s(ackBucketUppersMs, ms)
	c.mu.Lock()
	c.counts[i]++
	c.acks++
	c.sum += d
	c.mu.Unlock()
}

func (c *closedLoop) recordFailure(err error) {
	c.mu.Lock()
	if err != nil {
		c.errors++
	} else {
		c.non200++
	}
	c.mu.Unlock()
}

// quantileMs returns the upper bound of the bucket where the cumulative
// count crosses q — the histogram's resolution is the answer's
// resolution. The +Inf bucket reports the largest finite bound.
func (c *closedLoop) quantileMs(q float64) float64 {
	target := uint64(q * float64(c.acks))
	var cum uint64
	for i, n := range c.counts {
		cum += n
		if cum > target {
			if i < len(ackBucketUppersMs) {
				return ackBucketUppersMs[i]
			}
			break
		}
	}
	return ackBucketUppersMs[len(ackBucketUppersMs)-1]
}

// closedLoopReport is the -ingest-concurrency slice of the JSON report.
type closedLoopReport struct {
	Writers    int          `json:"writers"`
	Acks       uint64       `json:"acks"`
	AcksPerSec float64      `json:"acks_per_sec"`
	AckMeanMs  float64      `json:"ack_mean_ms"`
	AckP50LeMs float64      `json:"ack_p50_le_ms"`
	AckP95LeMs float64      `json:"ack_p95_le_ms"`
	Non200     int          `json:"non_200"`
	Errors     int          `json:"errors"`
	AckLatHist []histBucket `json:"ack_latency_histogram"`
}

func (c *closedLoop) report(writers int, elapsed time.Duration) *closedLoopReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := &closedLoopReport{Writers: writers, Acks: c.acks, Non200: c.non200, Errors: c.errors}
	if elapsed > 0 {
		r.AcksPerSec = float64(c.acks) / elapsed.Seconds()
	}
	if c.acks > 0 {
		r.AckMeanMs = float64(c.sum) / float64(c.acks) / float64(time.Millisecond)
	}
	var cum uint64
	for i, n := range c.counts {
		cum += n
		le := "+Inf"
		if i < len(ackBucketUppersMs) {
			le = strconv.FormatFloat(ackBucketUppersMs[i], 'g', -1, 64)
		}
		r.AckLatHist = append(r.AckLatHist, histBucket{LeMs: le, Count: cum})
	}
	r.AckP50LeMs = c.quantileMs(0.50)
	r.AckP95LeMs = c.quantileMs(0.95)
	return r
}

// diagnoseQueries is the rotation of query shapes: repeats hit the
// response cache, simultaneous identical cold queries coalesce.
var diagnoseQueries = []string{
	"/v1/diagnose",
	"/v1/diagnose?format=json",
	"/v1/diagnose?window=24h",
	"/v1/diagnose",
}

// ingestBody builds one synthetic console batch. Lines advance a shared
// virtual clock so the corpus keeps growing in time order. garbleFrac
// of the lines come from a daemon no static profile knows ("opensmd" on
// a non-cname component), which the server quarantines — the feedstock
// for serve -mine. The choice hashes (seed, virtual second), so the
// injected mix is deterministic for a seed even with concurrent
// writers.
func ingestBody(clock *atomic.Int64, batch int, garbleFrac float64, seed int64) []byte {
	var buf bytes.Buffer
	buf.WriteString(`{"batches":[{"stream":"console","lines":[`)
	for i := 0; i < batch; i++ {
		sec := clock.Add(1)
		t := time.Unix(sec, 0).UTC()
		if i > 0 {
			buf.WriteByte(',')
		}
		if garbleFrac > 0 && float64(mix64(uint64(sec)^uint64(seed))%1000)/1000 < garbleFrac {
			fmt.Fprintf(&buf, `"%s ib%d opensmd: SUBNET SWEEP complete: %d nodes in %d ms"`,
				t.Format("2006-01-02T15:04:05.000000Z"), sec%2, 1500+sec%200, 300+sec%500)
			continue
		}
		fmt.Fprintf(&buf, `"%s c0-0c0s%dn%d kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)"`,
			t.Format("2006-01-02T15:04:05.000000Z"), i%16, i%4)
	}
	buf.WriteString(`]}]}`)
	return buf.Bytes()
}

// mix64 is splitmix64's finalizer — a cheap, stateless hash good enough
// to turn (seed, second) into an unbiased garble decision.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// stalenessDist accumulates observed read staleness in watermarks: the
// gap between the highest ingest watermark this client has been
// acknowledged and the watermark the read was served at.
type stalenessDist struct {
	mu   sync.Mutex
	obs  []uint64
	lead int // reads served ahead of our acked watermark (another writer)
}

func (s *stalenessDist) record(acked, served uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if served >= acked {
		if served > acked {
			s.lead++
		}
		s.obs = append(s.obs, 0)
		return
	}
	s.obs = append(s.obs, acked-served)
}

func (s *stalenessDist) quantile(q float64) uint64 {
	if len(s.obs) == 0 {
		return 0
	}
	sort.Slice(s.obs, func(i, j int) bool { return s.obs[i] < s.obs[j] })
	return s.obs[int(q*float64(len(s.obs)-1))]
}

// stalenessReport is the staleness slice of the JSON report.
type stalenessReport struct {
	Observed int    `json:"observed"`
	P50      uint64 `json:"p50"`
	P95      uint64 `json:"p95"`
	P99      uint64 `json:"p99"`
	Max      uint64 `json:"max"`
}

func (s *stalenessDist) report() stalenessReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := stalenessReport{Observed: len(s.obs), P50: s.quantile(0.50),
		P95: s.quantile(0.95), P99: s.quantile(0.99)}
	for _, v := range s.obs {
		if v > r.Max {
			r.Max = v
		}
	}
	return r
}

func run(o options, stdout io.Writer) error {
	if o.qps <= 0 || o.clients < 1 || o.batch < 1 || o.mix < 0 || o.mix > 1 {
		return fmt.Errorf("bad flags: qps, clients and batch must be positive, mix in [0,1]")
	}
	if o.ingestConc < 0 {
		return fmt.Errorf("bad flags: ingest-concurrency must be >= 0")
	}
	if o.zipfS <= 1 {
		return fmt.Errorf("bad flags: zipf must be > 1")
	}
	targets := []string{o.url}
	if o.replicas != "" {
		for _, t := range strings.Split(o.replicas, ",") {
			if t = strings.TrimSpace(strings.TrimSuffix(t, "/")); t != "" {
				targets = append(targets, t)
			}
		}
	}
	client := &http.Client{Timeout: 30 * time.Second}
	for _, t := range targets {
		if _, err := client.Get(t + "/healthz"); err != nil {
			return fmt.Errorf("target unreachable: %w", err)
		}
	}

	rng := rand.New(rand.NewSource(o.seed))
	zipf := rand.NewZipf(rng, o.zipfS, 1, uint64(len(targets)-1))
	var clock atomic.Int64
	clock.Store(time.Now().Unix())

	diag, ing := newKindStats(), newKindStats()
	perTarget := make(map[string]*kindStats, len(targets))
	launchedTarget := make(map[string]int, len(targets))
	for _, t := range targets {
		perTarget[t] = newKindStats()
	}
	var staleness stalenessDist
	var ackedWM atomic.Uint64 // highest ingest watermark acknowledged to us
	launchedDiag, launchedIng, saturated := 0, 0, 0

	sem := make(chan struct{}, o.clients)
	var wg sync.WaitGroup
	fire := func(method, target string, body []byte, stats ...*kindStats) {
		defer wg.Done()
		defer func() { <-sem }()
		start := time.Now()
		var (
			resp *http.Response
			err  error
		)
		if method == http.MethodPost {
			resp, err = client.Post(target, "application/json", bytes.NewReader(body))
		} else {
			resp, err = client.Get(target)
		}
		if err != nil {
			for _, s := range stats {
				s.record(0, 0, err)
			}
			return
		}
		if method == http.MethodPost && resp.StatusCode == http.StatusOK {
			// The ingest ack carries the watermark our write committed at;
			// it is the reference every later read's staleness is measured
			// against.
			var ir struct {
				Watermark uint64 `json:"watermark"`
			}
			if json.NewDecoder(resp.Body).Decode(&ir) == nil {
				for {
					cur := ackedWM.Load()
					if ir.Watermark <= cur || ackedWM.CompareAndSwap(cur, ir.Watermark) {
						break
					}
				}
			}
		} else if method == http.MethodGet && resp.StatusCode == http.StatusOK {
			if wmStr := resp.Header.Get("X-Hpcfail-Watermark"); wmStr != "" {
				if served, perr := strconv.ParseUint(wmStr, 10, 64); perr == nil {
					staleness.record(ackedWM.Load(), served)
				}
			}
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		d := time.Since(start)
		for _, s := range stats {
			s.record(resp.StatusCode, d, nil)
		}
	}

	interval := time.Duration(float64(time.Second) / o.qps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.Now().Add(o.duration)

	// Closed-loop ingest writers: each fires its next write the moment
	// the previous ack lands, so the measured acks/s is the server's
	// durable-ingest throughput at this concurrency (the open-loop mix
	// above measures latency under a fixed offered rate instead). The
	// concurrency is the group-commit amortization lever: writers
	// in-flight while a group fsyncs all ride the next leader's sync.
	loop := newClosedLoop()
	loopStart := time.Now()
	var loopWG sync.WaitGroup
	for w := 0; w < o.ingestConc; w++ {
		loopWG.Add(1)
		go func() {
			defer loopWG.Done()
			for time.Now().Before(deadline) {
				body := ingestBody(&clock, o.batch, o.garbleFrac, o.seed)
				start := time.Now()
				resp, err := client.Post(o.url+"/v1/ingest", "application/json", bytes.NewReader(body))
				if err != nil {
					loop.recordFailure(err)
					continue
				}
				if resp.StatusCode == http.StatusOK {
					var ir struct {
						Watermark uint64 `json:"watermark"`
					}
					if json.NewDecoder(resp.Body).Decode(&ir) == nil {
						for {
							cur := ackedWM.Load()
							if ir.Watermark <= cur || ackedWM.CompareAndSwap(cur, ir.Watermark) {
								break
							}
						}
					}
					loop.recordAck(time.Since(start))
				} else {
					loop.recordFailure(nil)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	qi := 0
	for now := range ticker.C {
		if now.After(deadline) {
			break
		}
		select {
		case sem <- struct{}{}:
		default:
			// Open loop: the launch clock does not wait, so a saturated
			// fleet is recorded, not absorbed.
			saturated++
			continue
		}
		wg.Add(1)
		if rng.Float64() < o.mix {
			launchedIng++
			go fire(http.MethodPost, o.url+"/v1/ingest", ingestBody(&clock, o.batch, o.garbleFrac, o.seed), ing, perTarget[o.url])
		} else {
			launchedDiag++
			qi++
			target := targets[zipf.Uint64()]
			launchedTarget[target]++
			go fire(http.MethodGet, target+diagnoseQueries[qi%len(diagnoseQueries)], nil, diag, perTarget[target])
		}
	}
	wg.Wait()
	loopWG.Wait()
	var loopReport *closedLoopReport
	if o.ingestConc > 0 {
		loopReport = loop.report(o.ingestConc, time.Since(loopStart))
	}

	perTargetReport := make(map[string]kindReport, len(targets))
	for _, t := range targets {
		launched := launchedTarget[t]
		if t == o.url {
			launched += launchedIng
		}
		perTargetReport[t] = perTarget[t].report(launched)
	}
	report := struct {
		URL         string                `json:"url"`
		Replicas    []string              `json:"replicas,omitempty"`
		ZipfS       float64               `json:"zipf_s"`
		QPS         float64               `json:"target_qps"`
		Clients     int                   `json:"clients"`
		DurationSec float64               `json:"duration_sec"`
		Mix         float64               `json:"ingest_mix"`
		Batch       int                   `json:"batch_lines"`
		GarbleFrac  float64               `json:"garble_frac,omitempty"`
		Seed        int64                 `json:"seed"`
		Saturated   int                   `json:"saturated_launches"`
		Diagnose    kindReport            `json:"diagnose"`
		Ingest      kindReport            `json:"ingest"`
		ClosedLoop  *closedLoopReport     `json:"ingest_closed_loop,omitempty"`
		PerTarget   map[string]kindReport `json:"per_target"`
		Staleness   stalenessReport       `json:"staleness_watermarks"`
	}{
		URL: o.url, Replicas: targets[1:], ZipfS: o.zipfS, QPS: o.qps, Clients: o.clients,
		DurationSec: o.duration.Seconds(),
		Mix:         o.mix, Batch: o.batch, GarbleFrac: o.garbleFrac, Seed: o.seed, Saturated: saturated,
		Diagnose: diag.report(launchedDiag), Ingest: ing.report(launchedIng),
		ClosedLoop: loopReport,
		PerTarget:  perTargetReport, Staleness: staleness.report(),
	}

	fmt.Fprintf(stdout, "diagnose: %d launched, %d ok, p50 %.2fms p95 %.2fms p99 %.2fms\n",
		report.Diagnose.Launched, report.Diagnose.OK, report.Diagnose.P50Ms, report.Diagnose.P95Ms, report.Diagnose.P99Ms)
	fmt.Fprintf(stdout, "ingest:   %d launched, %d ok, p50 %.2fms p95 %.2fms p99 %.2fms\n",
		report.Ingest.Launched, report.Ingest.OK, report.Ingest.P50Ms, report.Ingest.P95Ms, report.Ingest.P99Ms)
	shed := report.Diagnose.Codes["429"] + report.Ingest.Codes["429"]
	fmt.Fprintf(stdout, "shed 429s: %d, errors: %d, saturated launches: %d\n",
		shed, report.Diagnose.Errors+report.Ingest.Errors, saturated)
	if loopReport != nil {
		fmt.Fprintf(stdout, "closed-loop ingest: %d writers, %d acks, %.0f acks/s, ack mean %.2fms p50 ≤%gms p95 ≤%gms, non-200 %d, errors %d\n",
			loopReport.Writers, loopReport.Acks, loopReport.AcksPerSec, loopReport.AckMeanMs,
			loopReport.AckP50LeMs, loopReport.AckP95LeMs, loopReport.Non200, loopReport.Errors)
		var prev uint64
		for _, b := range loopReport.AckLatHist {
			n := b.Count - prev
			prev = b.Count
			if n > 0 {
				fmt.Fprintf(stdout, "  ack latency ≤%sms: %d\n", b.LeMs, n)
			}
		}
	}
	if len(targets) > 1 {
		for _, t := range targets {
			r := perTargetReport[t]
			fmt.Fprintf(stdout, "target %s: %d launched, %d ok, p50 %.2fms p95 %.2fms p99 %.2fms\n",
				t, r.Launched, r.OK, r.P50Ms, r.P95Ms, r.P99Ms)
		}
		st := report.Staleness
		fmt.Fprintf(stdout, "staleness (watermarks): %d reads, p50 %d p95 %d p99 %d max %d\n",
			st.Observed, st.P50, st.P95, st.P99, st.Max)
	}

	if o.out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "report written to %s\n", o.out)
	}
	return nil
}
