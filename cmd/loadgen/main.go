// Command loadgen drives an open-loop load against a running serve
// instance: requests are launched on a fixed-rate clock regardless of
// completions (so server slowdowns surface as latency and shed 429s,
// not as a politely backing-off client), with a bounded in-flight cap
// standing in for the client fleet size.
//
//	loadgen -url http://localhost:8080 -qps 200 -clients 32 -duration 10s -mix 0.2
//
// The mix splits traffic between POST /v1/ingest (synthetic console
// batches) and GET /v1/diagnose (drawn from a small query set so the
// server's cache and singleflight both get exercised). The run ends
// with a latency/throughput report per request kind; -out writes it as
// JSON for the serving-benchmark record.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hpcfail/internal/version"
)

type options struct {
	url      string
	qps      float64
	clients  int
	duration time.Duration
	mix      float64
	batch    int
	seed     int64
	out      string
}

func main() {
	var o options
	flag.StringVar(&o.url, "url", "http://localhost:8080", "serve base URL")
	flag.Float64Var(&o.qps, "qps", 100, "aggregate request launch rate")
	flag.IntVar(&o.clients, "clients", 16, "maximum in-flight requests (the simulated client fleet)")
	flag.DurationVar(&o.duration, "duration", 10*time.Second, "run length")
	flag.Float64Var(&o.mix, "mix", 0.2, "fraction of requests that ingest (rest diagnose)")
	flag.IntVar(&o.batch, "batch", 32, "lines per ingest batch")
	flag.Int64Var(&o.seed, "seed", 1, "random seed for the traffic mix")
	flag.StringVar(&o.out, "out", "", "write the JSON report here ('' = stdout summary only)")
	showVer := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *showVer {
		version.Print(os.Stdout, "loadgen")
		return
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// kindStats accumulates one request kind's outcomes.
type kindStats struct {
	mu        sync.Mutex
	latencies []time.Duration
	codes     map[int]int
	errors    int
}

func newKindStats() *kindStats { return &kindStats{codes: make(map[int]int)} }

func (s *kindStats) record(code int, d time.Duration, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.errors++
		return
	}
	s.codes[code]++
	if code == http.StatusOK {
		s.latencies = append(s.latencies, d)
	}
}

// quantile returns the q-quantile of the recorded OK latencies.
func (s *kindStats) quantile(q float64) time.Duration {
	if len(s.latencies) == 0 {
		return 0
	}
	sort.Slice(s.latencies, func(i, j int) bool { return s.latencies[i] < s.latencies[j] })
	i := int(q * float64(len(s.latencies)-1))
	return s.latencies[i]
}

// kindReport is the per-kind slice of the JSON report.
type kindReport struct {
	Launched int            `json:"launched"`
	OK       int            `json:"ok"`
	Codes    map[string]int `json:"codes"`
	Errors   int            `json:"errors"`
	P50Ms    float64        `json:"p50_ms"`
	P95Ms    float64        `json:"p95_ms"`
	P99Ms    float64        `json:"p99_ms"`
}

func (s *kindStats) report(launched int) kindReport {
	s.mu.Lock()
	codes := make(map[string]int, len(s.codes))
	for c, n := range s.codes {
		codes[fmt.Sprint(c)] = n
	}
	errs := s.errors
	s.mu.Unlock()
	return kindReport{
		Launched: launched,
		OK:       codes["200"],
		Codes:    codes,
		Errors:   errs,
		P50Ms:    float64(s.quantile(0.50)) / float64(time.Millisecond),
		P95Ms:    float64(s.quantile(0.95)) / float64(time.Millisecond),
		P99Ms:    float64(s.quantile(0.99)) / float64(time.Millisecond),
	}
}

// diagnoseQueries is the rotation of query shapes: repeats hit the
// response cache, simultaneous identical cold queries coalesce.
var diagnoseQueries = []string{
	"/v1/diagnose",
	"/v1/diagnose?format=json",
	"/v1/diagnose?window=24h",
	"/v1/diagnose",
}

// ingestBody builds one synthetic console batch. Lines advance a shared
// virtual clock so the corpus keeps growing in time order.
func ingestBody(clock *atomic.Int64, batch int) []byte {
	var buf bytes.Buffer
	buf.WriteString(`{"batches":[{"stream":"console","lines":[`)
	for i := 0; i < batch; i++ {
		t := time.Unix(clock.Add(1), 0).UTC()
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, `"%s c0-0c0s%dn%d kernel: <4> EDAC MC0: corrected memory error on DIMM (benign burst)"`,
			t.Format("2006-01-02T15:04:05.000000Z"), i%16, i%4)
	}
	buf.WriteString(`]}]}`)
	return buf.Bytes()
}

func run(o options, stdout io.Writer) error {
	if o.qps <= 0 || o.clients < 1 || o.batch < 1 || o.mix < 0 || o.mix > 1 {
		return fmt.Errorf("bad flags: qps, clients and batch must be positive, mix in [0,1]")
	}
	client := &http.Client{Timeout: 30 * time.Second}
	if _, err := client.Get(o.url + "/healthz"); err != nil {
		return fmt.Errorf("server unreachable: %w", err)
	}

	rng := rand.New(rand.NewSource(o.seed))
	var clock atomic.Int64
	clock.Store(time.Now().Unix())

	diag, ing := newKindStats(), newKindStats()
	launchedDiag, launchedIng, saturated := 0, 0, 0

	sem := make(chan struct{}, o.clients)
	var wg sync.WaitGroup
	fire := func(method, target string, body []byte, stats *kindStats) {
		defer wg.Done()
		defer func() { <-sem }()
		start := time.Now()
		var (
			resp *http.Response
			err  error
		)
		if method == http.MethodPost {
			resp, err = client.Post(target, "application/json", bytes.NewReader(body))
		} else {
			resp, err = client.Get(target)
		}
		if err != nil {
			stats.record(0, 0, err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		stats.record(resp.StatusCode, time.Since(start), nil)
	}

	interval := time.Duration(float64(time.Second) / o.qps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.Now().Add(o.duration)
	qi := 0
	for now := range ticker.C {
		if now.After(deadline) {
			break
		}
		select {
		case sem <- struct{}{}:
		default:
			// Open loop: the launch clock does not wait, so a saturated
			// fleet is recorded, not absorbed.
			saturated++
			continue
		}
		wg.Add(1)
		if rng.Float64() < o.mix {
			launchedIng++
			go fire(http.MethodPost, o.url+"/v1/ingest", ingestBody(&clock, o.batch), ing)
		} else {
			launchedDiag++
			qi++
			go fire(http.MethodGet, o.url+diagnoseQueries[qi%len(diagnoseQueries)], nil, diag)
		}
	}
	wg.Wait()

	report := struct {
		URL         string     `json:"url"`
		QPS         float64    `json:"target_qps"`
		Clients     int        `json:"clients"`
		DurationSec float64    `json:"duration_sec"`
		Mix         float64    `json:"ingest_mix"`
		Batch       int        `json:"batch_lines"`
		Seed        int64      `json:"seed"`
		Saturated   int        `json:"saturated_launches"`
		Diagnose    kindReport `json:"diagnose"`
		Ingest      kindReport `json:"ingest"`
	}{
		URL: o.url, QPS: o.qps, Clients: o.clients, DurationSec: o.duration.Seconds(),
		Mix: o.mix, Batch: o.batch, Seed: o.seed, Saturated: saturated,
		Diagnose: diag.report(launchedDiag), Ingest: ing.report(launchedIng),
	}

	fmt.Fprintf(stdout, "diagnose: %d launched, %d ok, p50 %.2fms p95 %.2fms p99 %.2fms\n",
		report.Diagnose.Launched, report.Diagnose.OK, report.Diagnose.P50Ms, report.Diagnose.P95Ms, report.Diagnose.P99Ms)
	fmt.Fprintf(stdout, "ingest:   %d launched, %d ok, p50 %.2fms p95 %.2fms p99 %.2fms\n",
		report.Ingest.Launched, report.Ingest.OK, report.Ingest.P50Ms, report.Ingest.P95Ms, report.Ingest.P99Ms)
	shed := report.Diagnose.Codes["429"] + report.Ingest.Codes["429"]
	fmt.Fprintf(stdout, "shed 429s: %d, errors: %d, saturated launches: %d\n",
		shed, report.Diagnose.Errors+report.Ingest.Errors, saturated)

	if o.out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "report written to %s\n", o.out)
	}
	return nil
}
