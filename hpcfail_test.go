package hpcfail

import (
	"path/filepath"
	"testing"
	"time"

	"hpcfail/internal/topology"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	p, err := SystemProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec.Nodes = 384
	p.Spec.CabinetCols = 2
	p.Workload.MeanInterarrival = 30 * time.Minute
	p.FloodBladeIdx = nil
	p.FloodStopIdx = -1
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scn, err := Simulate(p, start, start.AddDate(0, 0, 5), 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(scn.Failures) == 0 {
		t.Fatal("no failures simulated")
	}

	// In-memory path.
	res := Diagnose(StoreRecords(scn.Records))
	if len(res.Detections) == 0 {
		t.Fatal("no failures detected")
	}

	// Disk path: write raw logs, load them back, diagnose again.
	dir := filepath.Join(t.TempDir(), "logs")
	if err := WriteLogs(dir, scn); err != nil {
		t.Fatal(err)
	}
	store, parseErrs, err := LoadLogs(dir, topology.SchedulerSlurm)
	if err != nil {
		t.Fatal(err)
	}
	if len(parseErrs) != 0 {
		t.Fatalf("parse errors: %v", parseErrs[0])
	}
	res2 := DiagnoseWith(store, DefaultPipelineConfig())
	if len(res2.Detections) != len(res.Detections) {
		t.Errorf("disk path detected %d failures, memory path %d",
			len(res2.Detections), len(res.Detections))
	}

	// Lead-time aggregation is reachable from the facade.
	sum := SummarizeLeadTimes(res.Diagnoses)
	if sum.Total != len(res.Diagnoses) {
		t.Error("lead-time summary total mismatch")
	}

	// Parallel diagnosis matches the serial result.
	par := DiagnoseParallel(StoreRecords(scn.Records), 4)
	if len(par.Diagnoses) != len(res.Diagnoses) {
		t.Errorf("parallel diagnoses %d != serial %d", len(par.Diagnoses), len(res.Diagnoses))
	}

	// Recommendations derive from the result.
	if recs := Recommend(res); len(recs) == 0 {
		t.Error("no recommendations from a failure-bearing result")
	}

	// The streaming watcher finds the same failures.
	streamed := 0
	w := NewWatcher(func(Detection) { streamed++ })
	w.FeedAll(scn.Records)
	if streamed != len(res.Detections) {
		t.Errorf("watcher streamed %d failures, batch found %d", streamed, len(res.Detections))
	}
}

// TestAllSystemsEndToEnd runs every Table I system through the full
// simulate → write → load → diagnose path and checks the reproduction
// contract: clean parsing and near-perfect detection recall, for both
// scheduler dialects and for the non-Cray S5.
func TestAllSystemsEndToEnd(t *testing.T) {
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	for _, id := range []string{"S1", "S2", "S3", "S4", "S5"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			p, err := SystemProfile(id)
			if err != nil {
				t.Fatal(err)
			}
			if p.Spec.Nodes > 384 {
				p.Spec.Nodes = 384
				p.Spec.CabinetCols = 2
			}
			p.FloodBladeIdx = nil
			p.FloodStopIdx = -1
			p.Workload.MeanInterarrival = 45 * time.Minute
			scn, err := Simulate(p, start, start.AddDate(0, 0, 4), 77)
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join(t.TempDir(), "logs")
			if err := WriteLogs(dir, scn); err != nil {
				t.Fatal(err)
			}
			store, parseErrs, err := LoadLogs(dir, p.Spec.Scheduler)
			if err != nil {
				t.Fatal(err)
			}
			if len(parseErrs) != 0 {
				t.Fatalf("%d parse errors, first: %v", len(parseErrs), parseErrs[0])
			}
			res := Diagnose(store)
			if len(scn.Failures) == 0 {
				t.Skip("no failures in the short window")
			}
			recall := float64(len(res.Detections)) / float64(len(scn.Failures))
			if recall < 0.95 || recall > 1.05 {
				t.Errorf("detection recall = %.2f (%d of %d)", recall,
					len(res.Detections), len(scn.Failures))
			}
		})
	}
}

func TestSystemsTable(t *testing.T) {
	systems := Systems()
	if len(systems) != 5 {
		t.Fatalf("got %d systems", len(systems))
	}
	if systems[0].ID != "S1" || systems[4].ID != "S5" {
		t.Error("system order wrong")
	}
}

func TestCauseConstantsDistinct(t *testing.T) {
	seen := map[Cause]bool{}
	for _, c := range []Cause{CauseUnknown, CauseMCE, CauseCPUCorruption,
		CauseHardwareOther, CauseKernelBug, CauseCPUStall, CauseFilesystemBug,
		CauseOOM, CauseAppExit, CauseSegFault, CauseHungTask} {
		if seen[c] {
			t.Fatalf("duplicate cause constant %v", c)
		}
		seen[c] = true
	}
}
