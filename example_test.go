package hpcfail_test

import (
	"fmt"
	"time"

	"hpcfail"
)

// testProfile builds a small deterministic system for the examples.
func exampleProfile() hpcfail.Profile {
	p, err := hpcfail.SystemProfile("S1")
	if err != nil {
		panic(err)
	}
	p.Spec.Nodes = 384
	p.Spec.CabinetCols = 2
	p.FloodBladeIdx = nil
	p.FloodStopIdx = -1
	p.Workload.MeanInterarrival = time.Hour
	return p
}

// ExampleSimulate shows the minimal simulate→diagnose round trip.
func ExampleSimulate() {
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scenario, err := hpcfail.Simulate(exampleProfile(), start, start.AddDate(0, 0, 2), 42)
	if err != nil {
		panic(err)
	}
	result := hpcfail.Diagnose(hpcfail.StoreRecords(scenario.Records))
	fmt.Println("detected == ground truth:", len(result.Detections) == len(scenario.Failures))
	// Output:
	// detected == ground truth: true
}

// ExampleSummarizeLeadTimes shows the Fig 13 aggregate over a scenario.
func ExampleSummarizeLeadTimes() {
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scenario, err := hpcfail.Simulate(exampleProfile(), start, start.AddDate(0, 0, 14), 7)
	if err != nil {
		panic(err)
	}
	result := hpcfail.Diagnose(hpcfail.StoreRecords(scenario.Records))
	sum := hpcfail.SummarizeLeadTimes(result.Diagnoses)
	fmt.Println("some failures enhanceable:", sum.Enhanceable > 0)
	fmt.Println("factor near 5x:", sum.MeanFactor > 3 && sum.MeanFactor < 8)
	// Output:
	// some failures enhanceable: true
	// factor near 5x: true
}

// ExampleNewWatcher shows online detection from a record stream.
func ExampleNewWatcher() {
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scenario, err := hpcfail.Simulate(exampleProfile(), start, start.AddDate(0, 0, 2), 42)
	if err != nil {
		panic(err)
	}
	count := 0
	w := hpcfail.NewWatcher(func(hpcfail.Detection) { count++ })
	w.FeedAll(scenario.Records)
	fmt.Println("streamed detections match ground truth:", count == len(scenario.Failures))
	// Output:
	// streamed detections match ground truth: true
}
