package hpcfail

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"hpcfail/internal/topology"
)

const unknownDaemonCorpus = "testdata/corpus-unknown-daemon"

// loadQuarantined loads the fixture the plain way and returns the load
// plus the quarantined line count (all of it the un-profiled daemon).
func loadUnknownDaemon(t *testing.T) (*Store, *IngestReport, int) {
	t.Helper()
	store, rep, err := LoadLogsReport(unknownDaemonCorpus, topology.SchedulerSlurm)
	if err != nil {
		t.Fatal(err)
	}
	q := rep.TotalQuarantined()
	if q < 180 {
		t.Fatalf("fixture quarantined %d lines, want >= 180 (did testdata/gen.go change?)", q)
	}
	return store, rep, q
}

// TestMinerBootstrapsUnknownDaemon is the end-to-end acceptance path:
// a corpus with an un-profiled daemon yields at least one promoted
// candidate, and the exported profile — fed back through the mined
// loader — reclassifies at least 90% of that daemon's lines out of
// quarantine.
func TestMinerBootstrapsUnknownDaemon(t *testing.T) {
	store, rep, quarantined := loadUnknownDaemon(t)

	var promoted []MinedCandidate
	m := NewMiner(MinerConfig{})
	m.OnPromote = func(c MinedCandidate) { promoted = append(promoted, c) }
	for i := range rep.Streams {
		rep.Streams[i].EachQuarantined(m.Ingest)
	}
	for _, r := range store.All() {
		if r.Category == "unclassified" && r.Msg != "" {
			m.Ingest(r.Msg)
		}
	}
	if len(promoted) == 0 {
		t.Fatal("no candidate promoted from the unknown-daemon corpus")
	}
	sweep := false
	for _, c := range promoted {
		if strings.Contains(c.Template, "SUBNET SWEEP") {
			sweep = true
		}
	}
	if !sweep {
		t.Errorf("the frequent sweep template did not promote; got %+v", promoted)
	}

	// Round-trip the profile through its wire form, as an operator (or
	// GET /v1/templates?format=profile) would.
	data, err := m.Export(2).Encode()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := DecodeMinedProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMinedMatcher(prof)
	if mc.Len() == 0 {
		t.Fatal("exported profile is empty")
	}

	minedStore, minedRep, err := LoadLogsReportMined(unknownDaemonCorpus, topology.SchedulerSlurm, mc)
	if err != nil {
		t.Fatal(err)
	}
	reclaimed := 0
	for _, r := range minedStore.All() {
		if strings.HasPrefix(r.Category, "mined_") {
			reclaimed++
			if r.Time.IsZero() {
				t.Fatalf("reclaimed record has no timestamp: %+v", r)
			}
		}
	}
	if frac := float64(reclaimed) / float64(quarantined); frac < 0.9 {
		t.Errorf("profile reclaimed %d of %d quarantined lines (%.0f%%), want >= 90%%",
			reclaimed, quarantined, 100*frac)
	}
	if got := minedRep.TotalQuarantined(); got != quarantined-reclaimed {
		t.Errorf("mined load quarantined %d, want %d-%d", got, quarantined, reclaimed)
	}
}

// TestMinedLoadKeepsStaticClassificationIdentical is the equivalence
// gate at the library layer: loading with a mined profile must not
// change a single primary record — the reclaimed lines are additions,
// never rewrites. Checked on every committed corpus.
func TestMinedLoadKeepsStaticClassificationIdentical(t *testing.T) {
	// Mine one profile from the unknown-daemon corpus and apply it to
	// every committed fixture.
	_, rep, _ := loadUnknownDaemon(t)
	m := NewMiner(MinerConfig{})
	for i := range rep.Streams {
		rep.Streams[i].EachQuarantined(m.Ingest)
	}
	mc := NewMinedMatcher(m.Export(2))

	for _, dir := range []string{
		"testdata/corpus-clean",
		"testdata/corpus-degraded",
		unknownDaemonCorpus,
	} {
		plain, _, err := LoadLogsReport(dir, topology.SchedulerSlurm)
		if err != nil {
			t.Fatal(err)
		}
		mined, _, err := LoadLogsReportMined(dir, topology.SchedulerSlurm, mc)
		if err != nil {
			t.Fatal(err)
		}
		var statics []Record
		for _, r := range mined.All() {
			if !strings.HasPrefix(r.Category, "mined_") {
				statics = append(statics, r)
			}
		}
		want := plain.All()
		sortRecords(want)
		sortRecords(statics)
		if !reflect.DeepEqual(want, statics) {
			t.Errorf("%s: static classification changed under the mined loader (%d vs %d records)",
				dir, len(want), len(statics))
		}
	}
}

// sortRecords orders records deterministically for multiset comparison
// (the mined loader may interleave reclaimed records between primary
// ones in store order).
func sortRecords(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool {
		if !recs[i].Time.Equal(recs[j].Time) {
			return recs[i].Time.Before(recs[j].Time)
		}
		if recs[i].Category != recs[j].Category {
			return recs[i].Category < recs[j].Category
		}
		return recs[i].Msg < recs[j].Msg
	})
}
