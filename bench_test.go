package hpcfail

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation. Each benchmark regenerates its artifact
// through the full simulate→diagnose pipeline at reduced scale and
// reports the artifact's headline rows on the first iteration (run with
// -v or look at cmd/experiments for the full tables).
//
//	go test -bench=. -benchmem
//
// Additional micro-benchmarks cover the pipeline's hot paths: event
// generation, log rendering/parsing, store indexing and diagnosis.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hpcfail/internal/core"
	"hpcfail/internal/events"
	"hpcfail/internal/experiments"
	"hpcfail/internal/faultsim"
	"hpcfail/internal/loggen"
	"hpcfail/internal/logparse"
	"hpcfail/internal/logstore"
	"hpcfail/internal/topology"
	"hpcfail/internal/wal"
)

// benchCfg keeps artifact benchmarks fast while exercising the whole
// stack.
func benchCfg() experiments.Config {
	return experiments.Config{Seed: 42, Scale: 0.08, Quick: true}
}

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			fmt.Println(res.String())
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkTable1(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)      { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)      { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)      { benchExperiment(b, "table5") }
func BenchmarkFig3(b *testing.B)        { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)        { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)        { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)        { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)        { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)       { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)       { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)       { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)       { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)       { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)       { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)       { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)       { benchExperiment(b, "fig19") }
func BenchmarkS3Breakdown(b *testing.B) { benchExperiment(b, "s3breakdown") }
func BenchmarkSWOShare(b *testing.B)    { benchExperiment(b, "swo") }

// Ablation benchmarks (design-choice studies from DESIGN.md).

func BenchmarkAblationWindow(b *testing.B)     { benchExperiment(b, "ablation-window") }
func BenchmarkAblationTrace(b *testing.B)      { benchExperiment(b, "ablation-trace") }
func BenchmarkAblationCorruption(b *testing.B) { benchExperiment(b, "ablation-corruption") }

// Extension benchmarks (Table VI recommendations made quantitative).

func BenchmarkExtensionCheckpoint(b *testing.B) { benchExperiment(b, "extension-checkpoint") }
func BenchmarkExtensionRecommend(b *testing.B)  { benchExperiment(b, "extension-recommend") }
func BenchmarkExtensionMLTrace(b *testing.B)    { benchExperiment(b, "extension-mltrace") }

// Experiment batch benchmarks: the cmd/experiments -all path, run
// sequentially vs on the worker pool.

func BenchmarkExperimentsSequential(b *testing.B) { benchRunAll(b, 1) }
func BenchmarkExperimentsParallel(b *testing.B)   { benchRunAll(b, 0) }

func benchRunAll(b *testing.B, jobs int) {
	b.Helper()
	ids := []string{"fig12", "fig16", "table5", "swo"}
	exps := make([]experiments.Experiment, 0, len(ids))
	for _, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			b.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}
	cfg := benchCfg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range experiments.RunAll(exps, cfg, jobs) {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
	}
}

// Pipeline micro-benchmarks.

var benchStart = time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)

func benchScenario(b *testing.B) *faultsim.Scenario {
	b.Helper()
	p, err := faultsim.DefaultProfile("S1")
	if err != nil {
		b.Fatal(err)
	}
	p.Spec = topology.Spec{ID: "S1", Nodes: 768, CabinetCols: 2,
		Scheduler: topology.SchedulerSlurm, Cray: true}
	p.FloodBladeIdx = nil
	p.FloodStopIdx = -1
	p.Workload.MeanInterarrival = 10 * time.Minute
	scn, err := faultsim.Generate(p, benchStart, benchStart.Add(7*24*time.Hour), 42)
	if err != nil {
		b.Fatal(err)
	}
	return scn
}

// BenchmarkSimulateWeek measures generating one simulated cluster-week.
func BenchmarkSimulateWeek(b *testing.B) {
	p, err := faultsim.DefaultProfile("S1")
	if err != nil {
		b.Fatal(err)
	}
	p.Spec = topology.Spec{ID: "S1", Nodes: 768, CabinetCols: 2,
		Scheduler: topology.SchedulerSlurm, Cray: true}
	p.FloodBladeIdx = nil
	p.FloodStopIdx = -1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := faultsim.Generate(p, benchStart, benchStart.Add(7*24*time.Hour), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRenderLogs measures text rendering of a cluster-week.
func BenchmarkRenderLogs(b *testing.B) {
	scn := benchScenario(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lines := loggen.RenderAll(scn.Records, topology.SchedulerSlurm)
		if len(lines) == 0 {
			b.Fatal("no lines")
		}
	}
}

// BenchmarkParseLogs measures parsing a cluster-week back from text.
func BenchmarkParseLogs(b *testing.B) {
	scn := benchScenario(b)
	byStream := map[events.Stream][]string{}
	for _, r := range scn.Records {
		byStream[r.Stream] = append(byStream[r.Stream], loggen.Render(r, topology.SchedulerSlurm)...)
	}
	total := 0
	for _, ls := range byStream {
		total += len(ls)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for stream, lines := range byStream {
			recs, _ := logparse.ParseLines(stream, topology.SchedulerSlurm, lines)
			n += len(recs)
		}
		if n == 0 {
			b.Fatal("parsed nothing")
		}
	}
	b.ReportMetric(float64(total), "lines/op")
}

// BenchmarkStoreBuild measures indexing a cluster-week of records.
func BenchmarkStoreBuild(b *testing.B) {
	scn := benchScenario(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if logstore.New(scn.Records).Len() == 0 {
			b.Fatal("empty store")
		}
	}
}

// BenchmarkDiagnoseWeek measures the full pipeline over an indexed
// cluster-week.
func BenchmarkDiagnoseWeek(b *testing.B) {
	scn := benchScenario(b)
	store := logstore.New(scn.Records)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Run(store, core.DefaultConfig())
		if len(res.Detections) == 0 {
			b.Fatal("no detections")
		}
	}
}

// BenchmarkDiagnoseWeekParallel measures the worker-pool variant on the
// same input (compare with BenchmarkDiagnoseWeek for the scaling).
func BenchmarkDiagnoseWeekParallel(b *testing.B) {
	scn := benchScenario(b)
	store := logstore.New(scn.Records)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.RunParallel(store, core.DefaultConfig(), 0)
		if len(res.Detections) == 0 {
			b.Fatal("no detections")
		}
	}
}

// BenchmarkWindowQuery measures the store's blade-window join, the
// pipeline's innermost operation.
func BenchmarkWindowQuery(b *testing.B) {
	scn := benchScenario(b)
	store := logstore.New(scn.Records)
	blades := scn.Cluster.Blades()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blade := blades[i%len(blades)]
		at := benchStart.Add(time.Duration(i%7*24) * time.Hour)
		_ = store.BladeWindow(blade, at, at.Add(time.Hour))
	}
}

func BenchmarkAblationPredictor(b *testing.B) { benchExperiment(b, "ablation-predictor") }

// Sharded streaming-ingestion benchmarks. The regression gate compares
// BenchmarkLoadDir (sequential, whole-corpus slurp) against
// BenchmarkStreamLoadDir (chunked parallel parse into a ShardedStore):
// at GOMAXPROCS >= 8 the streamed loader is expected to run >= 2x
// faster with no increase in allocations per parsed line (divide
// allocs/op by lines/op, or diff the two with benchstat — see README).
// BENCH_pr2.json records a reference -benchtime=1x run.

// benchCorpusDir renders a cluster-week to disk once and counts its
// log lines for the per-line metrics.
func benchCorpusDir(b *testing.B) (string, int) {
	b.Helper()
	scn := benchScenario(b)
	dir := filepath.Join(b.TempDir(), "logs")
	if err := logstore.WriteDir(dir, scn.Records, topology.SchedulerSlurm); err != nil {
		b.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	lines := 0
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			b.Fatal(err)
		}
		lines += logparse.NewLineScanner(string(data)).CountLines()
	}
	return dir, lines
}

// BenchmarkLoadDir measures the sequential directory loader end to end
// (read, parse, index).
func BenchmarkLoadDir(b *testing.B) {
	dir, lines := benchCorpusDir(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store, _, err := logstore.LoadDirReport(dir, topology.SchedulerSlurm)
		if err != nil {
			b.Fatal(err)
		}
		if store.Len() == 0 {
			b.Fatal("empty store")
		}
	}
	b.ReportMetric(float64(lines), "lines/op")
}

// BenchmarkStreamLoadDir measures the sharded streaming loader on the
// same corpus (bounded worker pool, per-shard indexing, background
// merge). The timed region includes waiting for the merged view so the
// comparison against BenchmarkLoadDir is end-to-end fair.
func BenchmarkStreamLoadDir(b *testing.B) {
	dir, lines := benchCorpusDir(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss, _, err := logstore.StreamLoadDir(dir, topology.SchedulerSlurm, logstore.StreamOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if ss.Merged().Len() == 0 {
			b.Fatal("empty store")
		}
	}
	b.ReportMetric(float64(lines), "lines/op")
}

// Crash-safety benchmarks. BenchmarkStreamLoadDirWAL prices the
// checkpoint journal against BenchmarkStreamLoadDir: the journal
// serialises every parsed record (that is what makes a resumed load
// byte-identical without re-reading damaged inputs), so expect roughly
// corpus-proportional overhead — the durability/speed trade-off is the
// chunk size and Options.Sync, not a constant tax.
// BenchmarkResumeLoadDir prices picking a half-finished load back up:
// journal replay for the completed half plus live parsing for the rest.
// BENCH_pr3.json records a reference -benchtime=1x run of both.

// BenchmarkStreamLoadDirWAL measures the streaming loader with a
// checkpoint journal attached (fresh WAL per iteration).
func BenchmarkStreamLoadDirWAL(b *testing.B) {
	dir, lines := benchCorpusDir(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wdir := filepath.Join(b.TempDir(), fmt.Sprintf("wal-%d", i))
		b.StartTimer()
		j, err := wal.Open(wdir, wal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ss, _, err := logstore.StreamLoadDir(dir, topology.SchedulerSlurm,
			logstore.StreamOptions{Journal: j})
		if err != nil {
			b.Fatal(err)
		}
		if ss.Merged().Len() == 0 {
			b.Fatal("empty store")
		}
		if err := j.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(lines), "lines/op")
}

// BenchmarkResumeLoadDir measures resuming a load that was killed about
// halfway (the kill and journal setup are outside the timed region).
func BenchmarkResumeLoadDir(b *testing.B) {
	dir, lines := benchCorpusDir(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wdir := filepath.Join(b.TempDir(), fmt.Sprintf("wal-%d", i))
		j, err := wal.Open(wdir, wal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		kctx, cancel := context.WithCancel(context.Background())
		chunks := 0
		_, _, err = logstore.StreamLoadDirContext(kctx, dir, topology.SchedulerSlurm,
			logstore.StreamOptions{Journal: j, ChunkLines: 512,
				OnChunk: func(string, int) {
					if chunks++; chunks == 12 {
						cancel()
					}
				}})
		cancel()
		if !errors.Is(err, logstore.ErrInterrupted) {
			b.Fatalf("setup kill: want ErrInterrupted, got %v", err)
		}
		b.StartTimer()
		ss, _, err := logstore.ResumeLoadDir(context.Background(), dir, topology.SchedulerSlurm,
			logstore.StreamOptions{Journal: j})
		if err != nil {
			b.Fatal(err)
		}
		if ss.Merged().Len() == 0 {
			b.Fatal("empty store")
		}
		if err := j.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(lines), "lines/op")
}

// BenchmarkIncrementalApply prices one small delta (16 records) applied
// to an incremental engine already holding a full cluster-week,
// including the Snapshot that makes the result servable — the
// post-ingest cost the online service pays on the first query at a new
// watermark. Compare with BenchmarkDiagnoseWeek, which re-pays the
// whole corpus for the same delta. BENCH_pr7.json records a reference
// run; the CI serving gate compares against it.
func BenchmarkIncrementalApply(b *testing.B) {
	scn := benchScenario(b)
	all := append([]events.Record(nil), scn.Records...)
	events.SortByTime(all)
	seedN := len(all) - len(all)/20 // hold back ~5% as the live tail
	eng := core.NewEngine(core.DefaultConfig())
	eng.ApplyBatch(all[:seedN])
	tail := all[seedN:]
	const delta = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (i * delta) % len(tail)
		end := off + delta
		if end > len(tail) {
			end = len(tail)
		}
		eng.ApplyBatch(tail[off:end])
		if res := eng.Snapshot(0); len(res.Detections) == 0 {
			b.Fatal("no detections")
		}
	}
}

// BenchmarkShardedStoreBuild measures sharding + per-shard indexing +
// k-way merge of an in-memory cluster-week (counterpart of
// BenchmarkStoreBuild).
func BenchmarkShardedStoreBuild(b *testing.B) {
	scn := benchScenario(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss := logstore.NewShardedFromRecords(scn.Records, 0)
		if ss.Merged().Len() == 0 {
			b.Fatal("empty store")
		}
	}
}

// BenchmarkRunSharded measures the shard-consuming pipeline over a
// sealed sharded store (compare with BenchmarkDiagnoseWeekParallel).
func BenchmarkRunSharded(b *testing.B) {
	scn := benchScenario(b)
	ss := logstore.NewShardedFromRecords(scn.Records, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.RunSharded(ss, core.DefaultConfig(), 0)
		if len(res.Detections) == 0 {
			b.Fatal("no detections")
		}
	}
}
