package hpcfail

// Sequential-equivalence property suite for the sharded streaming
// ingestion path: over seeded corpora, chaos damage modes and
// GOMAXPROCS settings, LoadLogsStream + DiagnoseSharded must produce
// byte-identical results to LoadLogsReport + Diagnose — same store
// contents, same ingest ledgers, same detections, same diagnoses, same
// degradation verdicts. Run with -race; the acceptance gate is
//
//	go test -run TestShardedEquivalence -race ./...

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"hpcfail/internal/events"
	"hpcfail/internal/loggen"
	"hpcfail/internal/topology"
)

// equivScenario simulates a small but failure-bearing S1 corpus.
func equivScenario(t testing.TB, seed uint64) *Scenario {
	t.Helper()
	p, err := SystemProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec.Nodes = 384
	p.Spec.CabinetCols = 2
	p.Workload.MeanInterarrival = 30 * time.Minute
	p.FloodBladeIdx = nil
	p.FloodStopIdx = -1
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scn, err := Simulate(p, start, start.Add(2*24*time.Hour), seed)
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// equivCorpus writes one corpus variant to disk and returns its dir.
type equivCorpus struct {
	name string
	// chaos is applied at render time (zero value = clean corpus).
	chaos ChaosConfig
	// removeStreams deletes these streams' files after writing, to
	// exercise degraded-mode parity.
	removeStreams []events.Stream
}

func (c equivCorpus) write(t *testing.T, scn *Scenario) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "logs")
	if c.chaos == (ChaosConfig{}) {
		if err := WriteLogs(dir, scn); err != nil {
			t.Fatal(err)
		}
	} else {
		if _, err := WriteLogsChaos(dir, scn, c.chaos); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range c.removeStreams {
		if err := os.Remove(filepath.Join(dir, loggen.FileName(s))); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// sameIngestReports asserts ledger equality, rendering errors to
// strings (error values don't DeepEqual across construction sites).
func sameIngestReports(t *testing.T, got, want *IngestReport) {
	t.Helper()
	if !reflect.DeepEqual(got.Skipped, want.Skipped) {
		t.Fatalf("Skipped diverges: %v vs %v", got.Skipped, want.Skipped)
	}
	if !reflect.DeepEqual(got.Missing, want.Missing) {
		t.Fatalf("Missing diverges: %v vs %v", got.Missing, want.Missing)
	}
	if got.TotalParsed() != want.TotalParsed() ||
		got.TotalQuarantined() != want.TotalQuarantined() ||
		got.TotalReordered() != want.TotalReordered() {
		t.Fatalf("ingest totals diverge: %s vs %s", got, want)
	}
	if len(got.Streams) != len(want.Streams) {
		t.Fatalf("stream ledger count %d vs %d", len(got.Streams), len(want.Streams))
	}
	for i := range got.Streams {
		g, w := got.Streams[i], want.Streams[i]
		if g.Stream != w.Stream || g.Lines != w.Lines || g.Parsed != w.Parsed ||
			g.Quarantined != w.Quarantined || g.Reordered != w.Reordered ||
			!reflect.DeepEqual(g.Samples, w.Samples) {
			t.Fatalf("stream %v ledger diverges:\n got %+v\nwant %+v", g.Stream, g, w)
		}
		if len(g.Errs) != len(w.Errs) {
			t.Fatalf("stream %v err count %d vs %d", g.Stream, len(g.Errs), len(w.Errs))
		}
		for j := range g.Errs {
			if g.Errs[j].Error() != w.Errs[j].Error() {
				t.Fatalf("stream %v err %d: %v vs %v", g.Stream, j, g.Errs[j], w.Errs[j])
			}
		}
	}
}

// sameResults asserts full pipeline-output equality.
func sameResults(t *testing.T, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Detections, want.Detections) {
		t.Fatalf("detections diverge: %d vs %d", len(got.Detections), len(want.Detections))
	}
	if !reflect.DeepEqual(got.Diagnoses, want.Diagnoses) {
		for i := range got.Diagnoses {
			if !reflect.DeepEqual(got.Diagnoses[i], want.Diagnoses[i]) {
				t.Fatalf("diagnosis %d diverges:\n got %+v\nwant %+v", i, got.Diagnoses[i], want.Diagnoses[i])
			}
		}
		t.Fatalf("diagnoses diverge: %d vs %d", len(got.Diagnoses), len(want.Diagnoses))
	}
	if !reflect.DeepEqual(got.Jobs, want.Jobs) {
		t.Fatalf("job tables diverge: %d vs %d jobs", len(got.Jobs), len(want.Jobs))
	}
	if got.Degradation != want.Degradation {
		t.Fatalf("degradation diverges: %+v vs %+v", got.Degradation, want.Degradation)
	}
	if !reflect.DeepEqual(got.Store.All(), want.Store.All()) {
		t.Fatalf("store contents diverge: %d vs %d records", got.Store.Len(), want.Store.Len())
	}
}

func TestShardedEquivalence(t *testing.T) {
	corpora := []equivCorpus{
		{name: "clean"},
		{name: "chaos-mixed", chaos: ChaosConfig{
			Drop: 0.05, Garble: 0.05, Truncate: 0.05, Duplicate: 0.05, Seed: 17}},
		{name: "chaos-garble", chaos: ChaosConfig{Garble: 0.15, Seed: 99}},
		{name: "degraded-no-scheduler", removeStreams: []events.Stream{events.StreamScheduler}},
	}
	streamOpts := []StreamOptions{
		{},
		{Workers: 3, Shards: 5, ChunkLines: 777, Queue: 2},
	}
	for _, seed := range []uint64{5, 23} {
		scn := equivScenario(t, seed)
		for _, c := range corpora {
			dir := c.write(t, scn)
			wantStore, wantRep, err := LoadLogsReport(dir, topology.SchedulerSlurm)
			if err != nil {
				t.Fatal(err)
			}
			wantRes := Diagnose(wantStore)
			if c.name == "clean" && len(wantRes.Detections) == 0 {
				t.Fatalf("seed %d: clean corpus yields no detections — property vacuous", seed)
			}
			for _, gmp := range []int{1, 2, 8} {
				t.Run(fmt.Sprintf("seed%d/%s/gomaxprocs%d", seed, c.name, gmp), func(t *testing.T) {
					old := runtime.GOMAXPROCS(gmp)
					defer runtime.GOMAXPROCS(old)
					for _, opts := range streamOpts {
						ss, rep, err := LoadLogsStream(dir, topology.SchedulerSlurm, opts)
						if err != nil {
							t.Fatal(err)
						}
						sameIngestReports(t, rep, wantRep)
						sameResults(t, DiagnoseSharded(ss, 0), wantRes)
					}
				})
			}
		}
	}
}

// TestShardedEquivalenceInMemory covers the in-memory construction
// path: ShardRecords + DiagnoseSharded vs StoreRecords + Diagnose.
func TestShardedEquivalenceInMemory(t *testing.T) {
	scn := equivScenario(t, 42)
	want := Diagnose(StoreRecords(scn.Records))
	for _, shards := range []int{1, 4, 16} {
		got := DiagnoseSharded(ShardRecords(scn.Records, shards), 0)
		sameResults(t, got, want)
	}
}
