package hpcfail

// Sequential-equivalence property suite for the sharded streaming
// ingestion path: over seeded corpora, chaos damage modes and
// GOMAXPROCS settings, LoadLogsStream + DiagnoseSharded must produce
// byte-identical results to LoadLogsReport + Diagnose — same store
// contents, same ingest ledgers, same detections, same diagnoses, same
// degradation verdicts. Run with -race; the acceptance gate is
//
//	go test -run TestShardedEquivalence -race ./...

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"hpcfail/internal/events"
	"hpcfail/internal/loggen"
	"hpcfail/internal/topology"
)

// equivScenario simulates a small but failure-bearing S1 corpus.
func equivScenario(t testing.TB, seed uint64) *Scenario {
	t.Helper()
	p, err := SystemProfile("S1")
	if err != nil {
		t.Fatal(err)
	}
	p.Spec.Nodes = 384
	p.Spec.CabinetCols = 2
	p.Workload.MeanInterarrival = 30 * time.Minute
	p.FloodBladeIdx = nil
	p.FloodStopIdx = -1
	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scn, err := Simulate(p, start, start.Add(2*24*time.Hour), seed)
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// equivCorpus writes one corpus variant to disk and returns its dir.
type equivCorpus struct {
	name string
	// chaos is applied at render time (zero value = clean corpus).
	chaos ChaosConfig
	// removeStreams deletes these streams' files after writing, to
	// exercise degraded-mode parity.
	removeStreams []events.Stream
}

func (c equivCorpus) write(t testing.TB, scn *Scenario) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "logs")
	if c.chaos == (ChaosConfig{}) {
		if err := WriteLogs(dir, scn); err != nil {
			t.Fatal(err)
		}
	} else {
		if _, err := WriteLogsChaos(dir, scn, c.chaos); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range c.removeStreams {
		if err := os.Remove(filepath.Join(dir, loggen.FileName(s))); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// sameIngestReports asserts ledger equality, rendering errors to
// strings (error values don't DeepEqual across construction sites).
func sameIngestReports(t *testing.T, got, want *IngestReport) {
	t.Helper()
	if !reflect.DeepEqual(got.Skipped, want.Skipped) {
		t.Fatalf("Skipped diverges: %v vs %v", got.Skipped, want.Skipped)
	}
	if !reflect.DeepEqual(got.Missing, want.Missing) {
		t.Fatalf("Missing diverges: %v vs %v", got.Missing, want.Missing)
	}
	if got.TotalParsed() != want.TotalParsed() ||
		got.TotalQuarantined() != want.TotalQuarantined() ||
		got.TotalReordered() != want.TotalReordered() {
		t.Fatalf("ingest totals diverge: %s vs %s", got, want)
	}
	if !reflect.DeepEqual(got.Poisoned, want.Poisoned) {
		t.Fatalf("Poisoned diverges:\n got %v\nwant %v", got.Poisoned, want.Poisoned)
	}
	if !reflect.DeepEqual(got.Tripped, want.Tripped) {
		t.Fatalf("Tripped diverges:\n got %v\nwant %v", got.Tripped, want.Tripped)
	}
	if len(got.Streams) != len(want.Streams) {
		t.Fatalf("stream ledger count %d vs %d", len(got.Streams), len(want.Streams))
	}
	for i := range got.Streams {
		g, w := got.Streams[i], want.Streams[i]
		if g.Stream != w.Stream || g.Lines != w.Lines || g.Parsed != w.Parsed ||
			g.Quarantined != w.Quarantined || g.Reordered != w.Reordered ||
			!reflect.DeepEqual(g.Samples, w.Samples) {
			t.Fatalf("stream %v ledger diverges:\n got %+v\nwant %+v", g.Stream, g, w)
		}
		if len(g.Errs) != len(w.Errs) {
			t.Fatalf("stream %v err count %d vs %d", g.Stream, len(g.Errs), len(w.Errs))
		}
		for j := range g.Errs {
			if g.Errs[j].Error() != w.Errs[j].Error() {
				t.Fatalf("stream %v err %d: %v vs %v", g.Stream, j, g.Errs[j], w.Errs[j])
			}
		}
	}
}

// sameResults asserts full pipeline-output equality.
func sameResults(t *testing.T, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Detections, want.Detections) {
		t.Fatalf("detections diverge: %d vs %d", len(got.Detections), len(want.Detections))
	}
	if !reflect.DeepEqual(got.Diagnoses, want.Diagnoses) {
		for i := range got.Diagnoses {
			if !reflect.DeepEqual(got.Diagnoses[i], want.Diagnoses[i]) {
				t.Fatalf("diagnosis %d diverges:\n got %+v\nwant %+v", i, got.Diagnoses[i], want.Diagnoses[i])
			}
		}
		t.Fatalf("diagnoses diverge: %d vs %d", len(got.Diagnoses), len(want.Diagnoses))
	}
	if !reflect.DeepEqual(got.Jobs, want.Jobs) {
		t.Fatalf("job tables diverge: %d vs %d jobs", len(got.Jobs), len(want.Jobs))
	}
	if got.Degradation != want.Degradation {
		t.Fatalf("degradation diverges: %+v vs %+v", got.Degradation, want.Degradation)
	}
	if !reflect.DeepEqual(got.Store.All(), want.Store.All()) {
		t.Fatalf("store contents diverge: %d vs %d records", got.Store.Len(), want.Store.Len())
	}
}

func TestShardedEquivalence(t *testing.T) {
	corpora := []equivCorpus{
		{name: "clean"},
		{name: "chaos-mixed", chaos: ChaosConfig{
			Drop: 0.05, Garble: 0.05, Truncate: 0.05, Duplicate: 0.05, Seed: 17}},
		{name: "chaos-garble", chaos: ChaosConfig{Garble: 0.15, Seed: 99}},
		{name: "degraded-no-scheduler", removeStreams: []events.Stream{events.StreamScheduler}},
	}
	streamOpts := []StreamOptions{
		{},
		{Workers: 3, Shards: 5, ChunkLines: 777, Queue: 2},
	}
	for _, seed := range []uint64{5, 23} {
		scn := equivScenario(t, seed)
		for _, c := range corpora {
			dir := c.write(t, scn)
			wantStore, wantRep, err := LoadLogsReport(dir, topology.SchedulerSlurm)
			if err != nil {
				t.Fatal(err)
			}
			wantRes := Diagnose(wantStore)
			if c.name == "clean" && len(wantRes.Detections) == 0 {
				t.Fatalf("seed %d: clean corpus yields no detections — property vacuous", seed)
			}
			for _, gmp := range []int{1, 2, 8} {
				t.Run(fmt.Sprintf("seed%d/%s/gomaxprocs%d", seed, c.name, gmp), func(t *testing.T) {
					old := runtime.GOMAXPROCS(gmp)
					defer runtime.GOMAXPROCS(old)
					for _, opts := range streamOpts {
						ss, rep, err := LoadLogsStream(dir, topology.SchedulerSlurm, opts)
						if err != nil {
							t.Fatal(err)
						}
						sameIngestReports(t, rep, wantRep)
						sameResults(t, DiagnoseSharded(ss, 0), wantRes)
					}
				})
			}
		}
	}
}

// TestCrashResumeEquivalence is the crash-safety property: a streaming
// load killed at an arbitrary point of collector progress and resumed
// from its WAL journal must be record-for-record identical to an
// uninterrupted load — same store contents, same ingest ledger
// (including supervisor poison/breaker verdicts), same diagnoses, same
// online-watcher detections. The matrix crosses kill points × process
// chaos modes (none/panic/stall/iofault, all with deterministic
// stateless verdicts) × GOMAXPROCS; run under -race.
func TestCrashResumeEquivalence(t *testing.T) {
	scn := equivScenario(t, 23)
	dir := equivCorpus{name: "chaos-mixed",
		chaos: ChaosConfig{Garble: 0.06, Truncate: 0.04, Seed: 17}}.write(t, scn)

	variants := []struct {
		name string
		cfg  ChaosConfig // process-fault injection config; zero = none
	}{
		{name: "none"},
		{name: "panic", cfg: ChaosConfig{Seed: 31, Panic: 0.25, Sticky: 1}},
		{name: "stall", cfg: ChaosConfig{Seed: 31, Stall: 0.25, Sticky: 1}},
		{name: "iofault", cfg: ChaosConfig{Seed: 31, IOFault: 0.5, Sticky: 0.5}},
	}
	base := StreamOptions{Workers: 3, Shards: 4, ChunkLines: 100,
		BreakerThreshold: 3, CheckpointEvery: 4, BackoffBase: -1}

	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			opts := base
			if v.cfg != (ChaosConfig{}) {
				opts.Chaos = NewChaosInjector(v.cfg)
			}
			wantSS, wantRep, err := LoadLogsStream(dir, topology.SchedulerSlurm, opts)
			if err != nil {
				t.Fatal(err)
			}
			wantRes := DiagnoseShardedReport(wantSS, wantRep, 0)
			var wantDets []Detection
			NewWatcher(func(d Detection) { wantDets = append(wantDets, d) }).FeedAll(wantSS.All())

			if v.name == "panic" || v.name == "stall" {
				// The supervised degradation contract: faults never fail
				// the load, they lower confidence and ledger the damage.
				if len(wantRep.Poisoned) == 0 {
					t.Fatalf("%s at 0.25 sticky poisoned nothing — matrix vacuous", v.name)
				}
				if wantRes.Degradation.LostChunks == 0 || !wantRes.Degradation.Degraded() {
					t.Fatal("lost chunks not reflected in degradation")
				}
			}

			for _, gmp := range []int{1, 2, 8} {
				for _, kill := range []int{0, 5, 13} {
					t.Run(fmt.Sprintf("gomaxprocs%d/kill%d", gmp, kill), func(t *testing.T) {
						old := runtime.GOMAXPROCS(gmp)
						defer runtime.GOMAXPROCS(old)

						journal, err := OpenWAL(filepath.Join(t.TempDir(), "wal"), WALOptions{})
						if err != nil {
							t.Fatal(err)
						}
						defer journal.Close()
						opts := base
						opts.Journal = journal
						if v.cfg != (ChaosConfig{}) {
							opts.Chaos = NewChaosInjector(v.cfg)
						}
						ctx, cancel := context.WithCancel(context.Background())
						seen := 0
						opts.OnChunk = func(string, int) {
							if seen == kill {
								cancel()
							}
							seen++
						}
						_, partial, err := LoadLogsStreamContext(ctx, dir, topology.SchedulerSlurm, opts)
						cancel()
						if !errors.Is(err, ErrInterrupted) {
							t.Fatalf("kill@%d: err = %v, want ErrInterrupted", kill, err)
						}
						if partial == nil {
							t.Fatal("interrupted load returned no partial report")
						}
						opts.OnChunk = nil
						ss, rep, err := ResumeLogs(context.Background(), dir, topology.SchedulerSlurm, opts)
						if err != nil {
							t.Fatalf("resume: %v", err)
						}
						if !reflect.DeepEqual(ss.All(), wantSS.All()) {
							t.Fatalf("resumed store diverges (%d vs %d records)", ss.Len(), wantSS.Len())
						}
						sameIngestReports(t, rep, wantRep)
						sameResults(t, DiagnoseShardedReport(ss, rep, 0), wantRes)

						// Online-watcher leg: a watcher checkpointed and
						// restored mid-sequence over the resumed store's
						// records emits exactly the reference detections.
						recs := ss.All()
						cut := len(recs) / 3
						var dets []Detection
						w1 := NewWatcher(func(d Detection) { dets = append(dets, d) })
						w1.FeedAll(recs[:cut])
						w2 := NewWatcher(func(d Detection) { dets = append(dets, d) })
						w2.Restore(w1.Snapshot())
						w2.FeedAll(recs[cut:])
						if !reflect.DeepEqual(dets, wantDets) {
							t.Fatalf("watcher detections diverge across snapshot/restore: %d vs %d",
								len(dets), len(wantDets))
						}
					})
				}
			}
		})
	}
}

// TestCrashResumeDoubleKill exercises a crash of the recovery itself at
// the top-level API: kill, resume, kill the resume, resume again.
func TestCrashResumeDoubleKill(t *testing.T) {
	scn := equivScenario(t, 23)
	dir := equivCorpus{name: "clean"}.write(t, scn)
	base := StreamOptions{Workers: 2, Shards: 3, ChunkLines: 100, CheckpointEvery: 2}
	wantSS, wantRep, err := LoadLogsStream(dir, topology.SchedulerSlurm, base)
	if err != nil {
		t.Fatal(err)
	}
	journal, err := OpenWAL(filepath.Join(t.TempDir(), "wal"), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer journal.Close()
	opts := base
	opts.Journal = journal
	kill := func(n int, resume bool) {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		seen := 0
		opts.OnChunk = func(string, int) {
			if seen == n {
				cancel()
			}
			seen++
		}
		var err error
		if resume {
			_, _, err = ResumeLogs(ctx, dir, topology.SchedulerSlurm, opts)
		} else {
			_, _, err = LoadLogsStreamContext(ctx, dir, topology.SchedulerSlurm, opts)
		}
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("kill@%d: err = %v, want ErrInterrupted", n, err)
		}
	}
	kill(3, false)
	kill(4, true)
	opts.OnChunk = nil
	ss, rep, err := ResumeLogs(context.Background(), dir, topology.SchedulerSlurm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ss.All(), wantSS.All()) {
		t.Fatalf("double-kill resume diverges (%d vs %d records)", ss.Len(), wantSS.Len())
	}
	sameIngestReports(t, rep, wantRep)
}

// TestSupervisedDegradationLowersConfidence pins the acceptance
// contract: a corpus whose load limped home with poisoned chunks
// diagnoses with strictly lower confidence and says why.
func TestSupervisedDegradationLowersConfidence(t *testing.T) {
	scn := equivScenario(t, 5)
	dir := equivCorpus{name: "clean"}.write(t, scn)
	clean, cleanRep, err := LoadLogsStream(dir, topology.SchedulerSlurm, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cleanRes := DiagnoseShardedReport(clean, cleanRep, 0)
	if len(cleanRes.Diagnoses) == 0 {
		t.Fatal("clean corpus yields no diagnoses — test vacuous")
	}

	opts := StreamOptions{ChunkLines: 100, BackoffBase: -1,
		Chaos: NewChaosInjector(ChaosConfig{Seed: 77, Panic: 0.15, Sticky: 1})}
	ss, rep, err := LoadLogsStream(dir, topology.SchedulerSlurm, opts)
	if err != nil {
		t.Fatalf("panicking workers must never fail the load: %v", err)
	}
	if len(rep.Poisoned) == 0 {
		t.Fatal("no poisoned chunks at Panic=0.15 sticky — test vacuous")
	}
	res := DiagnoseShardedReport(ss, rep, 0)
	if got, want := res.Degradation.LostChunks, rep.LostChunks(); got != want {
		t.Fatalf("Degradation.LostChunks = %d, want %d", got, want)
	}
	for i, d := range res.Diagnoses {
		if !d.Degraded {
			t.Fatalf("diagnosis %d not marked degraded", i)
		}
		if !strings.Contains(d.Note, "chunks lost during ingestion") {
			t.Fatalf("diagnosis %d note %q omits chunk loss", i, d.Note)
		}
	}
	// Confidence strictly lower than the same diagnosis made cleanly
	// (detection sets can differ when a poisoned chunk held a terminal
	// event, so compare only as far as both runs detect the same node).
	for i := 0; i < len(res.Diagnoses) && i < len(cleanRes.Diagnoses); i++ {
		g, w := res.Diagnoses[i], cleanRes.Diagnoses[i]
		if g.Detection == w.Detection && g.Confidence >= w.Confidence {
			t.Fatalf("diagnosis %d confidence %v not lowered (clean %v)", i, g.Confidence, w.Confidence)
		}
	}
}

// TestShardedEquivalenceInMemory covers the in-memory construction
// path: ShardRecords + DiagnoseSharded vs StoreRecords + Diagnose.
func TestShardedEquivalenceInMemory(t *testing.T) {
	scn := equivScenario(t, 42)
	want := Diagnose(StoreRecords(scn.Records))
	for _, shards := range []int{1, 4, 16} {
		got := DiagnoseSharded(ShardRecords(scn.Records, shards), 0)
		sameResults(t, got, want)
	}
}
