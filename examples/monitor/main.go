// Online monitoring: stream a simulated day's log records through the
// Watcher and show alarms preceding their failures — the production
// deployment shape of the paper's prediction-with-external-correlation
// recommendation.
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"log"
	"time"

	"hpcfail"
	"hpcfail/internal/core"
)

func main() {
	profile, err := hpcfail.SystemProfile("S1")
	if err != nil {
		log.Fatal(err)
	}
	profile.Spec.Nodes = 768
	profile.Spec.CabinetCols = 2
	profile.FloodBladeIdx = nil
	profile.FloodStopIdx = -1

	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scenario, err := hpcfail.Simulate(profile, start, start.AddDate(0, 0, 3), 11)
	if err != nil {
		log.Fatal(err)
	}

	// Track which alarmed nodes later fail (and how much warning the
	// alarm gave).
	alarmAt := map[string]time.Time{}
	alarmExt := map[string]bool{}
	covered, total := 0, 0

	w := core.NewWatcher(core.DefaultConfig(), func(d core.Detection) {
		total++
		node := d.Node.String()
		if at, ok := alarmAt[node]; ok && d.Time.Sub(at) <= 30*time.Minute {
			covered++
			ext := ""
			if alarmExt[node] {
				ext = " (externally corroborated)"
			}
			fmt.Printf("%s  FAILURE %-12s — alarmed %s earlier%s\n",
				d.Time.Format("01-02 15:04:05"), node, d.Time.Sub(at).Round(time.Second), ext)
			return
		}
		fmt.Printf("%s  FAILURE %-12s — no early warning (terminal %s)\n",
			d.Time.Format("01-02 15:04:05"), node, d.Terminal)
	})
	w.OnAlarm = func(a core.Alarm) {
		alarmAt[a.Node.String()] = a.Time
		alarmExt[a.Node.String()] = a.HasExternal
	}

	w.FeedAll(scenario.Records)

	fmt.Printf("\n%d/%d failures had an online early warning.\n", covered, total)
	fmt.Println("Application-triggered failures (OOM, abnormal exits) give no precursor bursts —")
	fmt.Println("prediction cannot cover them (Observation 5); see examples/jobtriggered for the remedy.")
}
