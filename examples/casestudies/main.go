// Case studies: replay the paper's five Table V failure cases through
// the diagnosis pipeline and compare the inferred root causes with the
// paper's conclusions.
//
//	go run ./examples/casestudies
package main

import (
	"fmt"
	"time"

	"hpcfail"
	"hpcfail/internal/core"
	"hpcfail/internal/faultsim"
)

func main() {
	at := time.Date(2015, 3, 2, 12, 0, 0, 0, time.UTC)
	for _, cs := range faultsim.BuildCaseStudies(at, 2021) {
		result := hpcfail.Diagnose(hpcfail.StoreRecords(cs.Scenario.Records))
		fmt.Printf("%s\n", cs.Name)
		fmt.Printf("  paper's inference: %s\n", cs.Notes)
		fmt.Printf("  failures detected: %d (planted %d)\n", len(result.Detections), cs.FailureCount)
		for _, d := range result.Diagnoses {
			lt := core.ComputeLeadTime(d)
			ext := "no external indicators"
			if len(d.ExternalIndicators) > 0 {
				ext = fmt.Sprintf("%d external indicators, lead %s",
					len(d.ExternalIndicators), lt.External.Round(time.Second))
			}
			fmt.Printf("  %s %-12s -> %-14s app-triggered=%-5v (%s)\n",
				d.Detection.Time.Format("15:04:05"), d.Detection.Node,
				d.Cause, d.AppTriggered, ext)
		}
		verdict := "MATCH"
		if len(result.Diagnoses) == 0 || result.Diagnoses[0].Cause != cs.ExpectedCause {
			verdict = "DIVERGES"
		}
		fmt.Printf("  expected cause %s -> %s\n\n", cs.ExpectedCause, verdict)
	}
}
