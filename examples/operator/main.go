// Operator playbook: the end-to-end decision loop the paper's Table VI
// recommends — diagnose a simulated month, derive the recommendations,
// flag the buggy APIDs, and compare checkpoint strategies under the
// measured failure behaviour.
//
//	go run ./examples/operator
package main

import (
	"fmt"
	"log"
	"time"

	"hpcfail"
	"hpcfail/internal/checkpoint"
	"hpcfail/internal/core"
)

func main() {
	profile, err := hpcfail.SystemProfile("S1")
	if err != nil {
		log.Fatal(err)
	}
	profile.Spec.Nodes = 768
	profile.Spec.CabinetCols = 2
	profile.FloodBladeIdx = nil
	profile.FloodStopIdx = -1

	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	span := 30 * 24 * time.Hour
	scenario, err := hpcfail.Simulate(profile, start, start.Add(span), 2021)
	if err != nil {
		log.Fatal(err)
	}
	result := hpcfail.Diagnose(hpcfail.StoreRecords(scenario.Records))
	fmt.Printf("one month on %d nodes: %d failures diagnosed\n\n",
		scenario.Cluster.NumNodes(), len(result.Detections))

	// 1. Findings → recommendations (Table VI).
	fmt.Println("== Recommendations ==")
	for _, r := range hpcfail.Recommend(result) {
		fmt.Printf("[sev %d] %s\n        -> %s\n", r.Severity, r.Finding, r.Action)
	}

	// 2. Buggy APIDs for the NHC to track.
	fmt.Println("\n== Buggy jobs (NHC tracking candidates) ==")
	for _, b := range result.JobAnalyzer().BuggyJobs(3) {
		fmt.Printf("job %d (%s): %d node failures\n", b.JobID, b.App, b.Failures)
	}

	// 3. Checkpoint economics under the measured failure trace.
	mtbf := result.MTBF()
	params := checkpoint.DefaultParams(time.Duration(mtbf.Mean * float64(time.Minute)))
	var failures []checkpoint.Failure
	for _, d := range result.Diagnoses {
		lt := core.ComputeLeadTime(d)
		failures = append(failures, checkpoint.Failure{
			Time: d.Detection.Time, InternalLead: lt.Internal, ExternalLead: lt.External,
		})
	}
	outs, err := checkpoint.Compare(params, failures, span, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== Checkpoint strategies (Daly interval %s) ==\n",
		checkpoint.DalyInterval(params).Round(time.Minute))
	for _, o := range outs {
		fmt.Printf("%-20s waste %6s (%5.2f%%)  covered %d/%d failures\n",
			o.Strategy, o.TotalWaste().Round(time.Minute),
			o.WasteFraction(span)*100, o.Covered, o.Covered+o.Missed)
	}
	fmt.Println("\nexternal-lead-aware proactive checkpointing converts the paper's ~5x lead")
	fmt.Println("enhancement into avoided recomputation (Table VI, rows 1 and 3).")
}
