// Quickstart: simulate a week on a small Cray-style system, run the
// holistic diagnosis pipeline, and print the root-cause breakdown —
// the minimal end-to-end use of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"hpcfail"
)

func main() {
	// Start from the calibrated S1 profile (Cray XC30, Slurm, Lustre)
	// but shrink the machine so the example runs in a second.
	profile, err := hpcfail.SystemProfile("S1")
	if err != nil {
		log.Fatal(err)
	}
	profile.Spec.Nodes = 768
	profile.Spec.CabinetCols = 2
	profile.FloodBladeIdx = nil // skip the SEDC flood blades for brevity
	profile.FloodStopIdx = -1

	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scenario, err := hpcfail.Simulate(profile, start, start.AddDate(0, 0, 7), 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated one week on %d nodes: %d log records, %d jobs\n",
		scenario.Cluster.NumNodes(), len(scenario.Records), len(scenario.Jobs))

	// Diagnose from the logs alone — the pipeline never sees the
	// simulator's ground truth.
	result := hpcfail.Diagnose(hpcfail.StoreRecords(scenario.Records))
	fmt.Printf("detected %d node failures (ground truth: %d)\n\n",
		len(result.Detections), len(scenario.Failures))

	fmt.Println("root-cause breakdown:")
	for cause, n := range result.CauseBreakdown() {
		fmt.Printf("  %-16s %d\n", cause, n)
	}

	fmt.Println("\nfirst five diagnoses:")
	for i, d := range result.Diagnoses {
		if i >= 5 {
			break
		}
		fmt.Printf("  %s  %-12s %-14s app-triggered=%v\n",
			d.Detection.Time.Format("01-02 15:04"), d.Detection.Node, d.Cause, d.AppTriggered)
	}

	mtbf := result.MTBF()
	fmt.Printf("\nMTBF: %.1f ± %.1f minutes — failures cluster in minutes, not hours (Observation 1)\n",
		mtbf.Mean, mtbf.Stddev)
}
