// Lead-time walkthrough: simulate a month, then show how external
// (blade/cabinet/ERD) early indicators extend failure warning horizons
// ~5x for fail-slow hardware failures — and why application-triggered
// failures get no such benefit (the paper's Fig 13 / Observation 5).
//
//	go run ./examples/leadtime
package main

import (
	"fmt"
	"log"
	"time"

	"hpcfail"
	"hpcfail/internal/core"
)

func main() {
	profile, err := hpcfail.SystemProfile("S1")
	if err != nil {
		log.Fatal(err)
	}
	profile.Spec.Nodes = 768
	profile.Spec.CabinetCols = 2
	profile.FloodBladeIdx = nil
	profile.FloodStopIdx = -1

	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scenario, err := hpcfail.Simulate(profile, start, start.AddDate(0, 1, 0), 7)
	if err != nil {
		log.Fatal(err)
	}
	result := hpcfail.Diagnose(hpcfail.StoreRecords(scenario.Records))

	fmt.Println("fail-slow failures with external early indicators:")
	shown := 0
	for _, d := range result.Diagnoses {
		lt := core.ComputeLeadTime(d)
		if !lt.Enhanced || shown >= 8 {
			continue
		}
		shown++
		first := d.ExternalIndicators[0]
		fmt.Printf("  %s %-12s %-14s internal lead %-8s external lead %-8s (%.1fx)\n",
			d.Detection.Time.Format("01-02 15:04"), d.Detection.Node, d.Cause,
			lt.Internal.Round(time.Second), lt.External.Round(time.Second), lt.Factor())
		fmt.Printf("      earliest indicator: %s %q\n", first.Category, first.Msg)
	}

	sum := hpcfail.SummarizeLeadTimes(result.Diagnoses)
	fmt.Printf("\naggregate over %d failures:\n", sum.Total)
	fmt.Printf("  enhanceable:      %d (%.1f%%)  [paper: 10-28%%]\n",
		sum.Enhanceable, sum.EnhanceableFraction()*100)
	fmt.Printf("  mean internal:    %.1f min\n", sum.MeanInternalMin)
	fmt.Printf("  mean external:    %.1f min\n", sum.MeanExternalMin)
	fmt.Printf("  mean enhancement: %.1fx       [paper: ~5x]\n", sum.MeanFactor)

	// Show why the rest are not enhanceable.
	appTriggered := 0
	for _, d := range result.Diagnoses {
		if d.AppTriggered {
			appTriggered++
		}
	}
	fmt.Printf("\n%d/%d failures are application-triggered; these show no external precursors,\n",
		appTriggered, len(result.Diagnoses))
	fmt.Println("so their lead times cannot be extended (Observation 5).")
}
