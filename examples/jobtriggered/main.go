// Job-triggered failures: reproduce the application-side findings —
// spatially distant nodes failing minutes apart under one job
// (Observation 8) and the Fig 17 memory-overallocation day.
//
//	go run ./examples/jobtriggered
package main

import (
	"fmt"
	"log"
	"time"

	"hpcfail"
	"hpcfail/internal/core"
	"hpcfail/internal/faultsim"
	"hpcfail/internal/logstore"
)

func main() {
	sharedJobClusters()
	overallocationDay()
}

// sharedJobClusters simulates two weeks and prints the multi-node
// failure groups that share a job.
func sharedJobClusters() {
	profile, err := hpcfail.SystemProfile("S3")
	if err != nil {
		log.Fatal(err)
	}
	profile.Spec.Nodes = 576
	profile.Spec.CabinetCols = 2
	profile.FloodBladeIdx = nil
	profile.FloodStopIdx = -1

	start := time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC)
	scenario, err := hpcfail.Simulate(profile, start, start.AddDate(0, 0, 14), 99)
	if err != nil {
		log.Fatal(err)
	}
	result := hpcfail.Diagnose(hpcfail.StoreRecords(scenario.Records))
	groups := result.JobAnalyzer().SharedJobGroups()

	fmt.Println("failure groups sharing one job (Observation 8):")
	for i, g := range groups {
		if i >= 5 {
			break
		}
		span := g.Failures[len(g.Failures)-1].Detection.Time.Sub(g.Failures[0].Detection.Time)
		fmt.Printf("  job %d (%s): %d nodes across %d blades within %s\n",
			g.JobID, g.App, len(g.Failures), g.SpanBlade, span.Round(time.Second))
	}
	mtbf := result.JobAnalyzer().JobTriggeredMTBF()
	fmt.Printf("job-triggered MTBF: %.1f minutes (paper Fig 19: <= 32 min weekly)\n\n", mtbf.Mean)
}

// overallocationDay replays the scripted Fig 17 scenario: Slurm grants
// more memory than nodes have; a subset of overallocated nodes fail.
func overallocationDay() {
	day := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	scenario, specs, err := faultsim.OverallocationDay(day, 5)
	if err != nil {
		log.Fatal(err)
	}
	result := core.Run(logstore.New(scenario.Records), core.DefaultConfig())
	reports := result.JobAnalyzer().Overallocations(64 * 1024)
	byJob := map[int64]core.OverallocationReport{}
	for _, r := range reports {
		byJob[r.JobID] = r
	}
	fmt.Println("memory overallocation day (Fig 17):")
	total := 0
	for i, s := range specs {
		r := byJob[s.JobID]
		marker := ""
		if r.Failed == s.Overallocated && s.Overallocated > 0 {
			marker = "  <- every overallocated node failed"
		}
		fmt.Printf("  J%-2d overallocated %-4d failed %-3d%s\n", i+1, s.Overallocated, r.Failed, marker)
		total += r.Failed
	}
	fmt.Printf("total failures: %d over %d jobs (paper: 53 over 16)\n", total, len(specs))
	fmt.Println("when job requirements exceed node capacity, quarantining does not help —")
	fmt.Println("monitor the application and inform the user instead (Observation 6).")
}
