// Package hpcfail is the public API of the hpcfail library — a
// reproduction of "Systemic Assessment of Node Failures in HPC
// Production Platforms" (Das, Mueller, Rountree; IPDPS 2021).
//
// The library has three layers:
//
//   - a deterministic cluster fault simulator that models the paper's
//     five systems (Table I) and emits raw text logs in the production
//     formats (Cray console/messages, blade/cabinet controller, ERD/SEDC
//     and Slurm/Torque scheduler logs);
//   - parsers and an indexed event store for those formats;
//   - the holistic diagnosis pipeline: failure detection, internal ↔
//     external correlation, stack-trace root-cause inference, job
//     attribution, lead-time and false-positive analysis.
//
// Quick start:
//
//	profile, _ := hpcfail.SystemProfile("S1")
//	scenario, _ := hpcfail.Simulate(profile, start, start.AddDate(0, 0, 7), 42)
//	result := hpcfail.Diagnose(hpcfail.StoreRecords(scenario.Records))
//	for _, d := range result.Diagnoses {
//		fmt.Println(d.Detection.Node, d.Cause, d.AppTriggered)
//	}
//
// See examples/ for runnable programs and cmd/experiments for the
// harness that regenerates every table and figure of the paper.
package hpcfail

import (
	"context"
	"time"

	"hpcfail/internal/chaos"
	"hpcfail/internal/core"
	"hpcfail/internal/events"
	"hpcfail/internal/faults"
	"hpcfail/internal/faultsim"
	"hpcfail/internal/logparse"
	"hpcfail/internal/logstore"
	"hpcfail/internal/miner"
	"hpcfail/internal/remedy"
	"hpcfail/internal/server"
	"hpcfail/internal/topology"
	"hpcfail/internal/wal"
)

// Re-exported core types. The aliases are the stable public names; the
// internal packages carry the implementations.
type (
	// SystemSpec describes one studied system (Table I row).
	SystemSpec = topology.Spec
	// Profile holds a system's calibrated fault-generation rates.
	Profile = faultsim.Profile
	// Scenario is a simulated system history: jobs, log records and
	// ground truth.
	Scenario = faultsim.Scenario
	// Failure is one ground-truth node failure.
	Failure = faultsim.Failure
	// Record is one structured log event.
	Record = events.Record
	// Store is the indexed event store the pipeline queries.
	Store = logstore.Store
	// PipelineConfig holds the diagnosis pipeline's windows.
	PipelineConfig = core.Config
	// Result is the pipeline output: detections and diagnoses.
	Result = core.Result
	// Detection is one confirmed node failure.
	Detection = core.Detection
	// Diagnosis is one failure's inferred root cause with evidence.
	Diagnosis = core.Diagnosis
	// Cause is a root-cause bucket.
	Cause = faults.Cause
	// Class is a coarse system layer.
	Class = faults.Class
	// LeadTimeSummary aggregates lead-time enhancement (Fig 13).
	LeadTimeSummary = core.LeadTimeSummary
)

// Root-cause buckets (see faults.Cause for documentation).
const (
	CauseUnknown       = faults.CauseUnknown
	CauseMCE           = faults.CauseMCE
	CauseCPUCorruption = faults.CauseCPUCorruption
	CauseHardwareOther = faults.CauseHardwareOther
	CauseKernelBug     = faults.CauseKernelBug
	CauseCPUStall      = faults.CauseCPUStall
	CauseFilesystemBug = faults.CauseFilesystemBug
	CauseOOM           = faults.CauseOOM
	CauseAppExit       = faults.CauseAppExit
	CauseSegFault      = faults.CauseSegFault
	CauseHungTask      = faults.CauseHungTask
)

// Systems lists the five studied system specs (Table I).
func Systems() []SystemSpec { return topology.Profiles() }

// SystemProfile returns the calibrated simulation profile for a system
// ("S1" … "S5").
func SystemProfile(id string) (Profile, error) { return faultsim.DefaultProfile(id) }

// Simulate runs the fault simulator over [start, end) with the given
// seed. Same inputs, same output — always.
func Simulate(p Profile, start, end time.Time, seed uint64) (*Scenario, error) {
	return faultsim.Generate(p, start, end, seed)
}

// StoreRecords builds an indexed store over in-memory records.
func StoreRecords(recs []Record) *Store { return logstore.New(recs) }

// WriteLogs renders a scenario's records into raw log files under dir
// (one file per stream, in the system's scheduler dialect).
func WriteLogs(dir string, scn *Scenario) error {
	return logstore.WriteDir(dir, scn.Records, scn.Profile.Spec.Scheduler)
}

// LoadLogs parses a log directory back into a store. Parse errors are
// returned alongside the (partial) store. Unreadable or empty files are
// skipped, never fatal; use LoadLogsReport for the full ingest ledger.
func LoadLogs(dir string, sched topology.SchedulerType) (*Store, []error, error) {
	return logstore.LoadDir(dir, sched)
}

// IngestReport is the per-stream ingestion ledger LoadLogsReport
// returns: records parsed, lines quarantined, out-of-order arrivals,
// files skipped with warnings, streams missing.
type IngestReport = logstore.IngestReport

// LoadLogsReport parses a log directory into a (possibly partial) store
// plus an IngestReport quantifying everything that was skipped,
// quarantined or reordered. Ingestion degrades gracefully: one bad file
// never aborts the load.
func LoadLogsReport(dir string, sched topology.SchedulerType) (*Store, *IngestReport, error) {
	return logstore.LoadDirReport(dir, sched)
}

// Sharded streaming-ingestion surface.
type (
	// ShardedStore is the node-hash-sharded store the streaming loader
	// fills; reads are lock-free after sealing and its merged view is
	// byte-identical to the sequential store.
	ShardedStore = logstore.ShardedStore
	// StreamOptions tunes the streaming loader's worker pool,
	// backpressure bounds, shard count, chunk size and the crash-safety
	// knobs: checkpoint journal, retry/breaker supervision, stall
	// watchdog.
	StreamOptions = logstore.StreamOptions
	// WAL is the append-only, checksummed, segment-rotated write-ahead
	// log backing checkpoint journals.
	WAL = wal.Log
	// WALOptions tunes a WAL (segment size, fsync policy).
	WALOptions = wal.Options
	// PoisonChunk is one chunk the ingestion supervisor quarantined
	// after exhausting its retry budget.
	PoisonChunk = logstore.PoisonChunk
	// BreakerTrip is one stream whose circuit breaker opened after too
	// many poisoned chunks.
	BreakerTrip = logstore.BreakerTrip
)

// ErrInterrupted wraps the error returned when a context-cancelled
// streaming load stops at a chunk boundary; the partial IngestReport is
// still returned, and a journaled load resumes with ResumeLogs.
var ErrInterrupted = logstore.ErrInterrupted

// OpenWAL opens (or creates) a write-ahead log directory, truncating
// any torn tail from a crashed writer. Pass it as StreamOptions.Journal
// to make a streaming load resumable.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) { return wal.Open(dir, opts) }

// LoadLogsStream is the sharded, memory-bounded counterpart of
// LoadLogsReport: files are read one at a time, parsed in chunks by a
// bounded worker pool and routed into a ShardedStore. Store contents
// and IngestReport are identical to LoadLogsReport over the same
// directory.
func LoadLogsStream(dir string, sched topology.SchedulerType, opts StreamOptions) (*ShardedStore, *IngestReport, error) {
	return logstore.StreamLoadDir(dir, sched, opts)
}

// LoadLogsStreamContext is LoadLogsStream under a context: cancellation
// stops the load at the next chunk boundary with ErrInterrupted and the
// partial report. With StreamOptions.Journal set the progress is
// checkpointed for ResumeLogs.
func LoadLogsStreamContext(ctx context.Context, dir string, sched topology.SchedulerType, opts StreamOptions) (*ShardedStore, *IngestReport, error) {
	return logstore.StreamLoadDirContext(ctx, dir, sched, opts)
}

// ResumeLogs continues a journaled streaming load that was interrupted
// or killed: completed work replays from the journal, the stream in
// flight re-enters the pipeline at the first unjournaled chunk, and the
// result is record-for-record identical to an uninterrupted load.
func ResumeLogs(ctx context.Context, dir string, sched topology.SchedulerType, opts StreamOptions) (*ShardedStore, *IngestReport, error) {
	return logstore.ResumeLoadDir(ctx, dir, sched, opts)
}

// ShardRecords builds a sealed sharded store over in-memory records —
// the sharded counterpart of StoreRecords (shards <= 0 selects the
// default shard count).
func ShardRecords(recs []Record, shards int) *ShardedStore {
	return logstore.NewShardedFromRecords(recs, shards)
}

// Chaos-harness surface: deterministic log fault injection for
// robustness testing. See internal/chaos for the fault model.
type (
	// ChaosConfig selects corruption modes and intensities.
	ChaosConfig = chaos.Config
	// ChaosReport is the injector's ground-truth corruption ledger.
	ChaosReport = chaos.Report
	// ChaosInjector applies a ChaosConfig to lines or records.
	ChaosInjector = chaos.Injector
	// Degradation names the stream families a corpus is missing.
	Degradation = core.Degradation
)

// ParseChaosSpec parses a -chaos flag value: either
// "mode=<name>,intensity=<0..1>[,seed=N]" or explicit per-fault keys
// ("drop=0.1,garble=0.05,seed=7").
func ParseChaosSpec(spec string) (ChaosConfig, error) { return chaos.ParseSpec(spec) }

// NewChaosInjector builds a deterministic fault injector: same config,
// same input, same corruption — always.
func NewChaosInjector(cfg ChaosConfig) *ChaosInjector { return chaos.New(cfg) }

// WriteLogsChaos renders a scenario's logs like WriteLogs but corrupts
// every stream at render time per cfg. The returned report is the
// injected ground truth, for checking ingestion accounting against.
func WriteLogsChaos(dir string, scn *Scenario, cfg ChaosConfig) (ChaosReport, error) {
	return logstore.WriteDirChaos(dir, scn.Records, scn.Profile.Spec.Scheduler, cfg)
}

// DefaultPipelineConfig returns the evaluation's correlation windows.
func DefaultPipelineConfig() PipelineConfig { return core.DefaultConfig() }

// Diagnose runs the full methodology — detect, correlate, attribute,
// classify — over a store with default windows.
func Diagnose(store *Store) *Result { return core.Run(store, core.DefaultConfig()) }

// DiagnoseWith runs the pipeline with custom windows.
func DiagnoseWith(store *Store, cfg PipelineConfig) *Result { return core.Run(store, cfg) }

// SummarizeLeadTimes aggregates lead-time enhancement over diagnoses
// (Fig 13).
func SummarizeLeadTimes(diags []Diagnosis) LeadTimeSummary {
	return core.SummarizeLeadTimes(diags)
}

// DiagnoseParallel runs the pipeline with per-failure diagnosis fanned
// out over a worker pool (workers <= 0 selects GOMAXPROCS). Output is
// identical to Diagnose.
func DiagnoseParallel(store *Store, workers int) *Result {
	return core.RunParallel(store, core.DefaultConfig(), workers)
}

// DiagnoseSharded runs the pipeline over a sharded store: detection
// per shard, diagnosis from shard-local windows, and the merged store
// built concurrently in the background. Output is identical to
// Diagnose over the equivalent sequential store.
func DiagnoseSharded(ss *ShardedStore, workers int) *Result {
	return core.RunSharded(ss, core.DefaultConfig(), workers)
}

// DiagnoseShardedWith is DiagnoseSharded with custom windows.
func DiagnoseShardedWith(ss *ShardedStore, cfg PipelineConfig, workers int) *Result {
	return core.RunSharded(ss, cfg, workers)
}

// DiagnoseShardedReport is DiagnoseSharded with the ingestion report's
// supervisor verdicts folded into the degradation assessment: chunks
// poisoned or dropped during loading lower every diagnosis's confidence
// and appear in its evidence note. rep may be nil.
func DiagnoseShardedReport(ss *ShardedStore, rep *IngestReport, workers int) *Result {
	return core.RunShardedReport(ss, rep, core.DefaultConfig(), workers)
}

// Recommendation is one Table VI-style operator action derived from
// measured behaviour.
type Recommendation = core.Recommendation

// Recommend derives the paper's findings → recommendations from a
// pipeline result.
func Recommend(res *Result) []Recommendation { return core.Recommend(res) }

// Watcher is the online (streaming) detector; see core.NewWatcher.
type Watcher = core.Watcher

// WatcherSnapshot is a watcher's serialisable detection state: a
// restored watcher continues with no duplicate and no missed
// detections. See Watcher.Snapshot / Watcher.Restore.
type WatcherSnapshot = core.WatcherSnapshot

// NewWatcher builds a streaming detector that invokes onDetection for
// each confirmed failure as its log records arrive.
func NewWatcher(onDetection func(Detection)) *Watcher {
	return core.NewWatcher(core.DefaultConfig(), onDetection)
}

// DiagnoseContext is Diagnose under a context: cancellation or deadline
// expiry stops the pipeline between per-failure diagnoses and returns
// the context's error with no partial result. The online service runs
// every query through this path so per-request timeouts reach the
// engine.
func DiagnoseContext(ctx context.Context, store *Store, cfg PipelineConfig) (*Result, error) {
	return core.RunContext(ctx, store, cfg)
}

// Engine is the incremental diagnosis pipeline: it holds live
// detection, correlation, job-table, apid and degradation state and
// updates all of it per ingested batch in cost proportional to the
// batch, not the corpus. After any sequence of ApplyBatch calls,
// Snapshot is value- and byte-identical to Diagnose over a store built
// from the concatenated batches; the differential harness in
// incremental_test.go proves that at every watermark. The online
// service applies deltas through one of these instead of rebuilding.
type Engine = core.Engine

// NewEngine builds an empty incremental pipeline with the default
// correlation windows.
func NewEngine() *Engine { return core.NewEngine(core.DefaultConfig()) }

// NewEngineWith is NewEngine with custom windows.
func NewEngineWith(cfg PipelineConfig) *Engine { return core.NewEngine(cfg) }

// SaveWatcherCheckpoint atomically persists a watcher's detection state
// (write-to-temp, rename); LoadWatcherCheckpoint restores it, reporting
// false with no error when the file does not exist. cmd/watch and the
// online service share this persistence.
func SaveWatcherCheckpoint(path string, w *Watcher) error { return core.SaveSnapshotFile(path, w) }

// LoadWatcherCheckpoint restores a checkpoint written by
// SaveWatcherCheckpoint into w.
func LoadWatcherCheckpoint(path string, w *Watcher) (bool, error) {
	return core.LoadSnapshotFile(path, w)
}

// Online-serving surface: the HTTP diagnosis service behind cmd/serve.
type (
	// ServeConfig tunes the online diagnosis service (admission bounds,
	// query timeout, cache size, checkpoint path).
	ServeConfig = server.Config
	// DiagnosisServer is a long-running HTTP service owning a live
	// corpus and watcher: batched ingest, cached/coalesced diagnosis
	// queries byte-identical to cmd/diagnose, SSE alarm streaming,
	// Prometheus metrics and graceful drain.
	DiagnosisServer = server.Server
	// IngestBatch is one stream's worth of raw log lines pushed to the
	// service.
	IngestBatch = server.IngestBatch
	// IngestResult accounts one accepted ingest request.
	IngestResult = server.IngestResult
)

// NewServer constructs the online diagnosis service with an empty
// corpus; Seed a bootstrap store, then serve its Handler.
func NewServer(cfg ServeConfig) *DiagnosisServer { return server.New(cfg) }

// Template-mining surface: online log-template discovery over the
// lines the static profiles reject (quarantined or unclassified), the
// bootstrap path for un-profiled systems. See internal/miner.
type (
	// MinerConfig tunes the online template miner (memory budget,
	// promotion thresholds, token limits). The zero value selects
	// sensible defaults.
	MinerConfig = miner.Config
	// TemplateMiner clusters unmatched log lines into templates online
	// under a bounded memory budget and promotes recurring or bursting
	// templates into candidate signatures.
	TemplateMiner = miner.Miner
	// MinerStats counts a miner's lifetime activity.
	MinerStats = miner.Stats
	// MinedTemplate is one live template's exported view.
	MinedTemplate = miner.TemplateView
	// MinedProfile is the canonical, serialisable template set a miner
	// exports — the bootstrap profile for a previously unknown daemon.
	MinedProfile = miner.Profile
	// MinedMatcher classifies raw lines against a MinedProfile; it
	// implements the classifier interface LoadLogsReportMined accepts.
	MinedMatcher = miner.Matcher
	// MinedClassifier is the pluggable reclaim hook: anything that maps
	// a raw line to a category. *MinedMatcher satisfies it.
	MinedClassifier = logparse.MinedClassifier
	// MinedCandidate is one template at the moment the miner promotes
	// it (TemplateMiner.OnPromote's argument).
	MinedCandidate = miner.Candidate
	// Candidate is one promoted mined signature surfaced by the online
	// watcher as a low-confidence detection kind.
	Candidate = core.Candidate
)

// NewMiner builds an online template miner. Set OnPromote on the
// returned miner to observe candidate promotions.
func NewMiner(cfg MinerConfig) *TemplateMiner { return miner.New(cfg) }

// NewMinedMatcher compiles a mined profile into a line classifier.
func NewMinedMatcher(p MinedProfile) *MinedMatcher { return miner.NewMatcher(p) }

// DecodeMinedProfile parses a profile previously written with
// MinedProfile.Encode (or exported via GET /v1/templates?format=profile).
func DecodeMinedProfile(data []byte) (MinedProfile, error) { return miner.DecodeProfile(data) }

// MergeMinedProfiles canonically merges profiles mined from separate
// corpora (or separate cuts of one corpus) into one.
func MergeMinedProfiles(ps ...MinedProfile) MinedProfile { return miner.MergeProfiles(ps...) }

// LoadLogsReportMined is LoadLogsReport with a mined-profile classifier
// reclaiming quarantined lines: lines the static parsers reject but mc
// matches become records (category = the mined slug) instead of ingest
// errors. mc == nil behaves exactly like LoadLogsReport.
func LoadLogsReportMined(dir string, sched topology.SchedulerType, mc MinedClassifier) (*Store, *IngestReport, error) {
	return logstore.LoadDirReportMined(dir, sched, mc)
}

// Closed-loop remediation surface: the SOP engine behind serve -remedy
// and cmd/remedy.
type (
	// RemedyConfig tunes the remediation engine: retries, per-SOP
	// timeouts, and the cluster-level safety guards (concurrent-drain
	// cap, cabinet blast radius, per-node cooldown).
	RemedyConfig = remedy.Config
	// RemedyEngine routes watcher conditions into prioritised SOP
	// queues, executes them with idempotency pre-checks, and records
	// every decision — refusals included — in an append-only ledger.
	RemedyEngine = remedy.Engine
	// RemedyTicket is one ledger entry; the full ledger replays into a
	// fresh engine for crash-safe restarts.
	RemedyTicket = remedy.Ticket
	// RemedyScore is the counterfactual scorecard of a remediated
	// scenario replay against simulator ground truth.
	RemedyScore = remedy.Score
)

// ReplayRemediation runs a generated scenario through the closed loop
// (watcher → SOP engine → simulated cluster) and scores the outcome
// against the scenario's ground-truth failures.
func ReplayRemediation(scn *Scenario, cfg RemedyConfig) (*remedy.ReplayResult, error) {
	return remedy.Replay(scn, remedy.ReplayConfig{Engine: cfg})
}
