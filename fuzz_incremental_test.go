package hpcfail

// FuzzApplyBatch cross-checks the incremental engine against the batch
// pipeline on fuzzer-shaped ingest schedules. Each input derives (a) a
// record mix: a slice of a chaos-damaged reference corpus plus whatever
// records parse out of the fuzz bytes themselves when read as raw log
// lines on every stream, and (b) a schedule: arrival-order
// perturbation and batch cut points. Any Result divergence from a
// from-scratch RunContextReport after any batch — or any panic — is a
// failure. The seed corpus is raw chunks of the chaos corpus files, so
// the fuzzer starts from realistic damaged lines.

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hpcfail/internal/core"
	"hpcfail/internal/events"
	"hpcfail/internal/loggen"
	"hpcfail/internal/logparse"
	"hpcfail/internal/topology"
)

var fuzzStreams = []events.Stream{
	events.StreamConsole, events.StreamMessages, events.StreamConsumer,
	events.StreamControllerBC, events.StreamControllerCC, events.StreamERD,
	events.StreamScheduler, events.StreamALPS,
}

func FuzzApplyBatch(f *testing.F) {
	scn := equivScenario(f, 23)
	dir := equivCorpus{name: "chaos-mixed", chaos: ChaosConfig{
		Drop: 0.05, Garble: 0.08, Truncate: 0.05, Duplicate: 0.05, Seed: 17}}.write(f, scn)
	store, _, err := LoadLogsReport(dir, topology.SchedulerSlurm)
	if err != nil {
		f.Fatal(err)
	}
	pool := store.All()
	if len(pool) == 0 {
		f.Fatal("empty reference corpus")
	}

	// Seed from the chaos corpora: one raw chunk per stream file.
	for _, s := range fuzzStreams {
		raw, err := os.ReadFile(filepath.Join(dir, loggen.FileName(s)))
		if err != nil || len(raw) == 0 {
			continue
		}
		if len(raw) > 2048 {
			raw = raw[:2048]
		}
		f.Add(raw)
	}
	f.Add([]byte("\x00\x01\x02tiny"))
	f.Add([]byte(strings.Repeat("A", 300)))

	cfg := DefaultPipelineConfig()
	f.Fuzz(func(t *testing.T, data []byte) {
		// The engine, not the line parser, is under test: bound the raw
		// input so pathological single lines can't dominate an exec.
		if len(data) > 4096 {
			data = data[:4096]
		}
		// The schedule is driven by explicit header bytes (not a hash of
		// the whole input) so the minimizer shrinking the tail doesn't
		// reshuffle the entire workload.
		pick := func(i int) int {
			if i < len(data) {
				return int(data[i])
			}
			return 0
		}
		start := (pick(0)<<8 | pick(1)) % len(pool)
		n := (pick(2)<<8 | pick(3)) % 300
		rng := rand.New(rand.NewSource(int64(pick(4)<<16 | pick(5)<<8 | pick(6))))

		// Record mix: a bounded slice of the reference pool...
		end := start + n
		if end > len(pool) {
			end = len(pool)
		}
		mix := make([]events.Record, end-start)
		copy(mix, pool[start:end])

		// ...plus the fuzz bytes parsed as raw log lines on every stream
		// (damaged lines quarantine, surviving ones become records).
		body := data
		if len(body) > 7 {
			body = body[7:]
		}
		lines := strings.Split(string(body), "\n")
		if len(lines) > 64 {
			lines = lines[:64]
		}
		for _, s := range fuzzStreams {
			recs, _ := logparse.ParseLinesReport(s, topology.SchedulerSlurm, lines)
			mix = append(mix, recs...)
		}
		if len(mix) == 0 {
			return
		}

		// Schedule: perturbed arrival order, random batch cuts.
		arrivals := perturbArrival(mix, rng, 0.3, 32)
		batches := splitBatches(arrivals, rng, 1+pick(7)%6)

		eng := NewEngine()
		var arrived []Record
		for _, b := range batches {
			eng.ApplyBatch(b)
			arrived = append(arrived, b...)
			got := eng.Snapshot(0)
			want, err := core.RunContextReport(context.Background(), StoreRecords(arrived), cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, got, want)
		}
	})
}
